"""The discrete-event simulation engine: one time path for the whole system.

Every simulated activity — direct-execution op walks, IR step schedules,
baseline algorithm phases — is expressed as typed events posted to an
:class:`EventEngine`.  The engine is the *only* place that knows about

* per-device engine timelines (compute / copy / accumulate queues with FIFO
  stream semantics),
* shared ingress/egress capacity (earliest-fitting-gap semantics, which is
  what serialises many-to-one accumulate fan-in and one-to-many tile
  fan-out),
* directed link occupancy between device pairs.

Events are scheduled immediately as they are posted, in emission order —
exactly the discipline the direct executor's interleaved walk relies on —
and each realized event records the dependency edges that explain its start
time, so the full run forms a DAG.

``contention=False`` produces the *relaxed* engine: the same events, the
same per-device FIFO queues, but no cross-device egress/ingress/link floors.
Because every constraint the relaxed engine enforces is also enforced by the
full engine (on the identical emission sequence), the relaxed makespan never
exceeds the contended one — which is what makes
:meth:`repro.core.cost_model.CostModel.critical_path_lower_bound` an
admissible pruning bound.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.runtime.clock import (
    ACCUMULATE,
    COMPUTE,
    COPY,
    EGRESS,
    ENGINES,
    INGRESS,
    SimClock,
)
from repro.sim.events import EventKind, ScheduledEvent
from repro.sim.trace import TraceRecorder


class EventEngine:
    """Schedules typed events onto per-device engine timelines (see module docs)."""

    def __init__(
        self,
        num_devices: int,
        contention: bool = True,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.clock = SimClock(num_devices)
        self.num_devices = num_devices
        self.contention = contention
        self.recorder = recorder
        self.events: List[ScheduledEvent] = []
        self._engine_tail: Dict[Tuple[int, str], int] = {}

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _floor(min_start: float, deps: Sequence[Optional[ScheduledEvent]]) -> float:
        earliest = min_start
        for dep in deps:
            if dep is not None and dep.end > earliest:
                earliest = dep.end
        return earliest

    @staticmethod
    def _dep_uids(deps: Sequence[Optional[ScheduledEvent]]) -> Tuple[int, ...]:
        return tuple(dep.uid for dep in deps if dep is not None)

    def _binding(
        self,
        start: float,
        deps: Sequence[Optional[ScheduledEvent]],
        engine_dep: Optional[int],
        engine_available: float,
    ) -> Optional[int]:
        """The predecessor whose completion realized ``start`` (dep edges win)."""
        for dep in deps:
            if dep is not None and dep.end == start:
                return dep.uid
        if engine_dep is not None and engine_available == start:
            return engine_dep
        return None

    def _emit(
        self,
        kind: EventKind,
        device: int,
        engine: Optional[str],
        start: float,
        end: float,
        duration: float,
        label: str,
        peer: Optional[int],
        deps: Sequence[Optional[ScheduledEvent]],
        engine_dep: Optional[int],
        engine_available: float,
    ) -> ScheduledEvent:
        event = ScheduledEvent(
            uid=len(self.events),
            kind=kind,
            device=device,
            engine=engine,
            start=start,
            end=end,
            duration=duration,
            label=label,
            peer=peer,
            deps=self._dep_uids(deps),
            engine_dep=engine_dep,
            binding=self._binding(start, deps, engine_dep, engine_available),
        )
        self.events.append(event)
        if engine is not None:
            self._engine_tail[(device, engine)] = event.uid
        if self.recorder is not None:
            self.recorder.record(event)
        return event

    def _reserve_fifo(
        self,
        kind: EventKind,
        device: int,
        engine: str,
        duration: float,
        min_start: float,
        deps: Sequence[Optional[ScheduledEvent]],
        label: str,
        peer: Optional[int] = None,
        floor: Optional[float] = None,
    ) -> ScheduledEvent:
        """FIFO-reserve ``duration`` on a device engine (the common case).

        ``floor`` overrides the dependency-derived earliest start (used when a
        contention floor was already resolved against another device).
        """
        timeline = self.clock.device(device)
        engine_dep = self._engine_tail.get((device, engine))
        engine_available = timeline.available_at(engine)
        earliest = self._floor(min_start, deps) if floor is None else floor
        start, end = timeline.reserve(engine, duration, earliest, label=label)
        return self._emit(kind, device, engine, start, end, duration, label,
                          peer, deps, engine_dep, engine_available)

    # ------------------------------------------------------------------ #
    # typed event posting
    # ------------------------------------------------------------------ #
    def fetch(
        self,
        device: int,
        duration: float,
        src: Optional[int] = None,
        occupancy: float = 0.0,
        min_start: float = 0.0,
        deps: Sequence[Optional[ScheduledEvent]] = (),
        label: str = "fetch",
    ) -> ScheduledEvent:
        """A one-sided get of a remote tile into ``device``.

        The transfer serialises on the reader's copy queue (program order).
        With contention modelled and a source device given, it must also find
        an idle slot in the owner's shared egress capacity and occupies the
        directed ``src -> device`` link — one-to-many tile fan-out serialises
        at the owner, exactly as in the paper's per-device bandwidth model.
        """
        timeline = self.clock.device(device)
        earliest = self._floor(min_start, deps)
        earliest = max(earliest, timeline.available_at(COPY))
        if self.contention and src is not None and src != device:
            source = self.clock.device(src)
            start = source.find_slot(EGRESS, occupancy, earliest)
            source.reserve_slot(EGRESS, occupancy, start, label=f"egress:{label}")
            self.clock.reserve_link(src, device, duration, start)
        else:
            start = earliest
        return self._reserve_fifo(EventKind.FETCH, device, COPY, duration,
                                  min_start, deps, label, peer=src, floor=start)

    def gemm(
        self,
        device: int,
        duration: float,
        min_start: float = 0.0,
        deps: Sequence[Optional[ScheduledEvent]] = (),
        label: str = "gemm",
    ) -> ScheduledEvent:
        """A local GEMM on the device's compute engine."""
        return self._reserve_fifo(EventKind.GEMM, device, COMPUTE, duration,
                                  min_start, deps, label)

    def accumulate(
        self,
        device: int,
        duration: float,
        dst: Optional[int] = None,
        occupancy: float = 0.0,
        interference: float = 0.0,
        min_start: float = 0.0,
        deps: Sequence[Optional[ScheduledEvent]] = (),
        label: str = "accumulate",
    ) -> ScheduledEvent:
        """A remote accumulate initiated by ``device`` into ``dst``.

        Runs as a kernel on the initiator's accumulate queue.  With
        contention modelled, it must find a free slot in the destination's
        shared ingress capacity (many-to-one fan-in serialises there) and
        occupies the directed link; ``interference`` additionally steals the
        given fraction of the initiator's compute engine while it runs (the
        paper observes this on H100).
        """
        timeline = self.clock.device(device)
        earliest = self._floor(min_start, deps)
        earliest = max(earliest, timeline.available_at(ACCUMULATE))
        if self.contention and dst is not None and dst != device:
            destination = self.clock.device(dst)
            start = destination.find_slot(INGRESS, occupancy, earliest)
            destination.reserve_slot(INGRESS, occupancy, start,
                                     label=f"ingress:{label}")
            self.clock.reserve_link(device, dst, duration, start)
        else:
            start = earliest
        event = self._reserve_fifo(EventKind.ACCUMULATE, device, ACCUMULATE,
                                   duration, min_start, deps, label,
                                   peer=dst, floor=start)
        if interference > 0.0:
            # The accumulate kernel steals compute resources while it runs —
            # concurrently, so the stolen slice shares the accumulate's own
            # dependencies and start rather than depending on the accumulate.
            self._reserve_fifo(EventKind.ACCUMULATE, device, COMPUTE,
                               duration * interference, min_start, deps,
                               f"interference:{label}", peer=dst,
                               floor=event.start)
        return event

    def local_accumulate(
        self,
        device: int,
        duration: float,
        min_start: float = 0.0,
        deps: Sequence[Optional[ScheduledEvent]] = (),
        label: str = "local-accumulate",
    ) -> ScheduledEvent:
        """Accumulate a partial result into a locally owned tile (compute engine)."""
        return self._reserve_fifo(EventKind.ACCUMULATE, device, COMPUTE,
                                  duration, min_start, deps, label)

    def collective(
        self,
        device: int,
        duration: float,
        min_start: float = 0.0,
        deps: Sequence[Optional[ScheduledEvent]] = (),
        label: str = "collective",
    ) -> ScheduledEvent:
        """One participant's share of a modelled collective (copy engine)."""
        return self._reserve_fifo(EventKind.COLLECTIVE, device, COPY, duration,
                                  min_start, deps, label)

    def sync(
        self,
        device: int,
        deps: Sequence[Optional[ScheduledEvent]] = (),
        min_start: float = 0.0,
        label: str = "sync",
    ) -> ScheduledEvent:
        """A zero-duration join: completes when every dependency has completed."""
        at = self._floor(min_start, deps)
        return self._emit(EventKind.SYNC, device, None, at, at, 0.0, label,
                          None, deps, None, 0.0)

    # ------------------------------------------------------------------ #
    # schedule queries
    # ------------------------------------------------------------------ #
    def makespan(self) -> float:
        """Finish time of the slowest device — the modelled wall-clock time."""
        return self.clock.makespan()

    def device_finish(self, device: int) -> float:
        return self.clock.device(device).finish_time()

    def busy_time(self, device: int, engine: str) -> float:
        return self.clock.device(device).busy_time(engine)

    def total_busy_time(self) -> float:
        """Summed occupancy across every engine of every device."""
        return sum(
            self.clock.device(d).busy_time(engine)
            for d in range(self.num_devices)
            for engine in ENGINES
        )

    def critical_path(self) -> List[ScheduledEvent]:
        """The chain of events that realized the makespan, in time order.

        Walks backwards from the last-finishing event through each event's
        ``binding`` predecessor (the dependency or queue predecessor whose
        completion determined its start).  The chain crosses engines — a
        fetch gating a GEMM gating an accumulate shows up as three links —
        which is precisely the structure the per-engine occupancy bound
        cannot see.
        """
        if not self.events:
            return []
        tail = max(self.events, key=lambda event: (event.end, event.uid))
        chain = [tail]
        while chain[-1].binding is not None:
            chain.append(self.events[chain[-1].binding])
        chain.reverse()
        return chain

    def critical_path_length(self) -> float:
        """Longest dependency-chain duration sum over the event DAG.

        Uses only DAG edges (explicit deps plus engine program order), so it
        is a lower bound on the realized makespan regardless of contention.
        """
        longest = 0.0
        path: Dict[int, float] = {}
        for event in self.events:
            upstream = 0.0
            for parent in event.parents:
                upstream = max(upstream, path.get(parent, 0.0))
            path[event.uid] = upstream + event.duration
            longest = max(longest, path[event.uid])
        return longest

    def reset(self) -> None:
        """Clear the schedule (and the attached recorder, if it supports it).

        Without clearing the recorder, a reused engine would append a second
        run with restarting uids and timestamps into the same trace.
        """
        self.clock.reset()
        self.events.clear()
        self._engine_tail.clear()
        clear = getattr(self.recorder, "clear", None)
        if callable(clear):
            clear()
