"""Typed simulation events: the vocabulary every time path now speaks.

The paper's claim (Section 4.3) is that one roofline-plus-bandwidth cost
model can price *every* operation in the system.  This module defines the
five event kinds that cover all of them:

* :attr:`EventKind.FETCH` — a one-sided tile get (copy engine, plus egress
  capacity on the owner and the directed link when contention is modelled);
* :attr:`EventKind.GEMM` — a local matrix multiply on the compute engine;
* :attr:`EventKind.ACCUMULATE` — a local or one-sided remote accumulate
  (accumulate engine, plus ingress capacity on the destination);
* :attr:`EventKind.SYNC` — a zero-duration join of other events (IR step
  barriers, phase boundaries);
* :attr:`EventKind.COLLECTIVE` — a modelled collective (broadcast,
  all-reduce) charged as one occupancy interval per participant.

Every scheduled event records its realized ``(start, end)`` interval, its
explicit dependencies, and the implicit program-order predecessor on its
engine, so the full execution forms a DAG that trace recorders can export
and that :meth:`repro.sim.engine.EventEngine.critical_path` can walk.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class EventKind(enum.Enum):
    """The typed vocabulary of the discrete-event engine."""

    FETCH = "fetch"
    GEMM = "gemm"
    ACCUMULATE = "accumulate"
    SYNC = "sync"
    COLLECTIVE = "collective"


@dataclass(frozen=True)
class ScheduledEvent:
    """One event after scheduling: immutable, with its realized interval.

    ``deps`` are the uids of the events whose completion explicitly gated
    this one (data dependencies).  ``engine_dep`` is the uid of the previous
    event scheduled on the same (device, engine) queue — the implicit
    program-order edge.  ``binding`` is the uid of whichever predecessor
    actually determined ``start`` (``None`` when the event started at its
    floor), which is what makes critical paths walkable without re-deriving
    the schedule.
    """

    uid: int
    kind: EventKind
    device: int
    engine: Optional[str]
    start: float
    end: float
    duration: float
    label: str = ""
    #: Source device of a FETCH / destination device of a remote ACCUMULATE.
    peer: Optional[int] = None
    deps: Tuple[int, ...] = ()
    engine_dep: Optional[int] = None
    binding: Optional[int] = None

    @property
    def parents(self) -> Tuple[int, ...]:
        """All DAG predecessors: explicit deps plus the engine-order edge."""
        if self.engine_dep is None:
            return self.deps
        return self.deps + (self.engine_dep,)
