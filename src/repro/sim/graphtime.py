"""Critical-path timing of workload-level op DAGs.

The graph planner scores a joint layout assignment as the makespan of the op
DAG where every node costs its op's simulated time and every edge delays its
consumer by the priced reshard.  This module is that one scheduling rule —
kept in the simulation layer so the planner's dynamic program, its
branch-and-bound bound, and the exhaustive test reference all price an
assignment through the *same* function and can never drift apart.

Semantics: an op becomes ready when every producer feeding it has finished
and its output has been resharded onto the consumer's expected layout;
independent ops overlap (critical-path/optimistic model).  On a linear chain
this reduces exactly to ``sum(op times) + sum(edge times)``, which is the
sequential replay a chain actually executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class GraphTiming:
    """Makespan plus per-op finish times for one scored assignment."""

    #: Modelled completion time of each op, indexed like the graph's ops.
    finish: Tuple[float, ...]
    #: Completion time of the whole DAG (the slowest sink's finish).
    makespan: float


def dag_makespan(num_ops: int, edges: Sequence[Tuple[int, int]],
                 op_times: Sequence[float],
                 edge_times: Sequence[float]) -> GraphTiming:
    """Critical-path makespan of a weighted op DAG.

    Args:
        num_ops: number of ops (nodes), indexed ``0..num_ops-1``.
        edges: ``(src, dst)`` dependency pairs (``dst`` consumes ``src``).
        op_times: per-op duration, indexed by op.
        edge_times: per-edge reshard delay, aligned with ``edges``.

    Returns:
        The per-op finish times and overall makespan under the critical-path
        model: ``ready(op) = max(finish(src) + edge_time)`` over incoming
        edges (0.0 for sources), ``finish(op) = ready(op) + op_time``.

    Raises:
        ValueError: on mismatched lengths, out-of-range endpoints, negative
            times, or a cyclic edge set.
    """
    if len(op_times) != num_ops:
        raise ValueError(f"expected {num_ops} op times, got {len(op_times)}")
    if len(edge_times) != len(edges):
        raise ValueError(f"expected {len(edges)} edge times, got {len(edge_times)}")
    if any(t < 0 for t in op_times) or any(t < 0 for t in edge_times):
        raise ValueError("op and edge times must be non-negative")
    indegree = [0] * num_ops
    outgoing: Dict[int, List[int]] = {}
    for position, (src, dst) in enumerate(edges):
        if not (0 <= src < num_ops) or not (0 <= dst < num_ops):
            raise ValueError(f"edge ({src}, {dst}) outside 0..{num_ops - 1}")
        indegree[dst] += 1
        outgoing.setdefault(src, []).append(position)
    ready_time = [0.0] * num_ops
    finish = [0.0] * num_ops
    frontier = sorted(i for i in range(num_ops) if indegree[i] == 0)
    visited = 0
    while frontier:
        node = frontier.pop(0)
        visited += 1
        finish[node] = ready_time[node] + float(op_times[node])
        for position in outgoing.get(node, ()):
            _, dst = edges[position]
            arrival = finish[node] + float(edge_times[position])
            if arrival > ready_time[dst]:
                ready_time[dst] = arrival
            indegree[dst] -= 1
            if indegree[dst] == 0:
                insert_at = 0
                while insert_at < len(frontier) and frontier[insert_at] < dst:
                    insert_at += 1
                frontier.insert(insert_at, dst)
    if visited != num_ops:
        raise ValueError("edge set contains a cycle")
    return GraphTiming(finish=tuple(finish),
                       makespan=max(finish) if finish else 0.0)
