"""Pluggable trace recorders for the event engine.

An :class:`~repro.sim.engine.EventEngine` calls ``record`` on its recorder
for every event it schedules.  The in-memory recorder keeps the full event
list and can export Chrome's ``chrome://tracing`` / Perfetto JSON format, so
a simulated schedule can be inspected on a real timeline viewer::

    from repro.sim import EventEngine, InMemoryTraceRecorder

    recorder = InMemoryTraceRecorder()
    engine = EventEngine(num_devices=4, recorder=recorder)
    ...  # run an executor or baseline through the engine
    recorder.dump_chrome_trace("trace.json")
"""

from __future__ import annotations

import json
from typing import Dict, List, Protocol

from repro.sim.events import EventKind, ScheduledEvent

#: Microseconds per modelled second in the Chrome export (the modelled times
#: are seconds; Chrome trace timestamps are microseconds).
_CHROME_SCALE = 1.0e6


class TraceRecorder(Protocol):
    """Anything that wants to observe scheduled events."""

    def record(self, event: ScheduledEvent) -> None:  # pragma: no cover - protocol
        ...


class InMemoryTraceRecorder:
    """Keeps every scheduled event; supports filtering and Chrome export."""

    def __init__(self) -> None:
        self.events: List[ScheduledEvent] = []

    def record(self, event: ScheduledEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        """Drop all recorded events (called by ``EventEngine.reset``)."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: EventKind) -> List[ScheduledEvent]:
        return [event for event in self.events if event.kind is kind]

    def by_device(self, device: int) -> List[ScheduledEvent]:
        return [event for event in self.events if event.device == device]

    # ------------------------------------------------------------------ #
    # Chrome trace export
    # ------------------------------------------------------------------ #
    def chrome_trace(self) -> Dict[str, object]:
        """The schedule as a Chrome-trace dict (one row per device engine)."""
        trace_events: List[Dict[str, object]] = []
        for event in self.events:
            if event.duration <= 0.0 and event.kind is EventKind.SYNC:
                continue
            trace_events.append(
                {
                    "name": event.label or event.kind.value,
                    "cat": event.kind.value,
                    "ph": "X",
                    "ts": event.start * _CHROME_SCALE,
                    "dur": event.duration * _CHROME_SCALE,
                    "pid": event.device,
                    "tid": event.engine or "sync",
                    "args": {
                        "uid": event.uid,
                        "deps": list(event.deps),
                        "peer": event.peer,
                    },
                }
            )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def dump_chrome_trace(self, path: str) -> str:
        """Write the Chrome-trace JSON to ``path`` and return the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)
            handle.write("\n")
        return path
