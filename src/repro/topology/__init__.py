"""Machine and interconnect models.

The paper evaluates on two systems (its Table 2): a 12-device Intel PVC node
connected with Xe Link and an 8-device Nvidia H100 node connected with NVLink.
Because this reproduction runs on CPUs, the machines are represented as
analytic models: per-device FP32 peak, memory bandwidth, and a link-bandwidth/
latency matrix between devices.  Every simulated one-sided transfer and local
GEMM is charged against this model, which is what lets the benchmark harness
report percent-of-peak numbers whose *shape* matches the paper's figures.
"""

from repro.topology.links import Link, LinkKind
from repro.topology.topology import Topology
from repro.topology.machines import (
    MachineSpec,
    pvc_system,
    h100_system,
    uniform_system,
    hierarchical_system,
    SYSTEMS,
    get_system,
)

__all__ = [
    "Link",
    "LinkKind",
    "Topology",
    "MachineSpec",
    "pvc_system",
    "h100_system",
    "uniform_system",
    "hierarchical_system",
    "SYSTEMS",
    "get_system",
]
