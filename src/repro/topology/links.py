"""Link descriptors for device-to-device interconnect modelling."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LinkKind(enum.Enum):
    """Tier of a device-to-device connection.

    The PVC system in the paper has two tiers below "self": the two tiles of
    one physical GPU talk over a fast inter-tile fabric (230 GB/s) while tiles
    on different GPUs use Xe Link (20 GB/s per link).  The H100 system has a
    single NVLink tier.  Inter-node links are modelled for completeness even
    though the paper's experiments are single-node.
    """

    SELF = "self"
    INTRA_DEVICE = "intra_device"
    INTRA_NODE = "intra_node"
    INTER_NODE = "inter_node"


@dataclass(frozen=True, slots=True)
class Link:
    """A directed connection between two devices.

    Attributes
    ----------
    bandwidth:
        Unidirectional bandwidth in bytes/second.
    latency:
        One-way latency in seconds, charged once per transfer.
    kind:
        Which interconnect tier the link belongs to.
    """

    bandwidth: float
    latency: float
    kind: LinkKind

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"link bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"link latency must be non-negative, got {self.latency}")

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` across this link (latency + bytes/bandwidth)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth
