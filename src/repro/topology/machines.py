"""Machine presets reproducing the paper's Table 2 plus synthetic systems.

Table 2 of the paper:

===========  =================  ==========  ===========
System       Number of Devices  Link BW     FP32 Peak
===========  =================  ==========  ===========
PVC          12                 26.5 GB/s   22.7 TFLOPs
H100         8                  450 GB/s    67 TFLOPs
===========  =================  ==========  ===========

The PVC node additionally has a faster inter-tile fabric (230 GB/s theoretical
unidirectional) between the two tiles of each physical GPU; the paper uses
each tile as an independent device, so the topology contains both tiers.

Accumulate efficiency reflects the paper's observation that the hand-written
atomic accumulate kernel reaches ~80% of copy-engine bandwidth on PVC, and
that on H100 the accumulate kernel additionally interferes with local GEMMs
(modelled as a compute-interference factor on concurrent accumulates).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.topology.links import Link, LinkKind
from repro.topology.topology import Topology

GB = 1.0e9
TFLOP = 1.0e12


@dataclass(frozen=True)
class MachineSpec:
    """Analytic model of one evaluation system.

    Attributes
    ----------
    name:
        Identifier used by the benchmark harness (``"pvc"``, ``"h100"``...).
    num_devices:
        Number of independent devices (PVC tiles count individually).
    flops_peak:
        Per-device FP32 peak in FLOP/s.
    memory_bandwidth:
        Per-device local memory (HBM) bandwidth in bytes/s.
    memory_capacity:
        Per-device memory capacity in bytes (used by COSMA-style budgets).
    topology:
        Device-to-device interconnect model.
    device_link_bandwidth:
        Aggregate unidirectional link bandwidth of one device in bytes/s (the
        per-device number in the paper's Table 2).  All traffic entering or
        leaving a device shares this capacity, independent of how many
        pair-wise links it is spread over.
    accumulate_efficiency:
        Fraction of link bandwidth achieved by the remote accumulate kernel
        relative to plain copies (paper: ~0.8 on PVC).
    accumulate_compute_interference:
        Fraction of local GEMM throughput lost while an accumulate kernel runs
        concurrently (paper observes this effect on H100, not on PVC).
    gemm_efficiency:
        Fraction of peak achievable by a large, well-shaped local GEMM.
    kernel_launch_overhead:
        Fixed host-side overhead per launched kernel/operation in seconds.
    """

    name: str
    num_devices: int
    flops_peak: float
    memory_bandwidth: float
    memory_capacity: float
    topology: Topology
    device_link_bandwidth: float = 0.0
    accumulate_efficiency: float = 0.8
    accumulate_compute_interference: float = 0.0
    gemm_efficiency: float = 0.92
    kernel_launch_overhead: float = 10.0e-6

    def __post_init__(self) -> None:
        if self.device_link_bandwidth <= 0.0:
            # Default: the slowest remote link tier, i.e. assume a device can
            # drive one such link at full rate but no more in aggregate.
            object.__setattr__(
                self, "device_link_bandwidth", self.topology.min_remote_bandwidth()
            )

    def total_peak(self) -> float:
        """Aggregate FP32 peak across all devices, in FLOP/s."""
        return self.flops_peak * self.num_devices

    def with_devices(self, num_devices: int) -> "MachineSpec":
        """Return a copy of this spec rescaled to a different device count.

        The interconnect is rebuilt as a uniform all-to-all fabric using this
        machine's slowest remote link tier, which is the conservative choice
        for strong-scaling sweeps.
        """
        topo = Topology.uniform(
            num_devices,
            link_bandwidth=self.topology.min_remote_bandwidth(),
            self_bandwidth=self.memory_bandwidth,
        )
        return replace(self, num_devices=num_devices, topology=topo)


def pvc_system(num_devices: int = 12) -> MachineSpec:
    """The 12-tile Intel Data Center GPU Max 1550 ("PVC") node from Table 2.

    Tiles ``2i`` and ``2i+1`` belong to the same physical GPU and communicate
    over the 230 GB/s inter-tile fabric; all other pairs use Xe Link.  The
    paper quotes 26.5 GB/s per-device unidirectional Xe Link bandwidth in
    Table 2 (20 GB/s per individual link); we use the per-device figure since
    transfers in the algorithm are charged per source/destination device.
    """
    xe_link = Link(bandwidth=26.5 * GB, latency=3.0e-6, kind=LinkKind.INTRA_NODE)
    inter_tile = Link(bandwidth=230.0 * GB, latency=1.5e-6, kind=LinkKind.INTRA_DEVICE)
    hbm = Link(bandwidth=3276.8 * GB, latency=1.0e-7, kind=LinkKind.SELF)

    overrides: Dict[tuple, Link] = {}
    for src in range(num_devices):
        for dst in range(num_devices):
            if src != dst and src // 2 == dst // 2:
                overrides[(src, dst)] = inter_tile
    topology = Topology(num_devices, xe_link, hbm, overrides)
    return MachineSpec(
        name="pvc",
        num_devices=num_devices,
        flops_peak=22.7 * TFLOP,
        memory_bandwidth=3276.8 * GB,
        memory_capacity=64 * GB,
        topology=topology,
        accumulate_efficiency=0.8,
        accumulate_compute_interference=0.0,
        gemm_efficiency=0.92,
    )


def h100_system(num_devices: int = 8) -> MachineSpec:
    """The 8-GPU Nvidia H100 node from Table 2 (450 GB/s NVLink, 67 TFLOP FP32)."""
    nvlink = Link(bandwidth=450.0 * GB, latency=2.0e-6, kind=LinkKind.INTRA_NODE)
    hbm = Link(bandwidth=3350.0 * GB, latency=1.0e-7, kind=LinkKind.SELF)
    topology = Topology(num_devices, nvlink, hbm)
    return MachineSpec(
        name="h100",
        num_devices=num_devices,
        flops_peak=67.0 * TFLOP,
        memory_bandwidth=3350.0 * GB,
        memory_capacity=80 * GB,
        topology=topology,
        accumulate_efficiency=0.8,
        # The paper observes the accumulate kernel slowing concurrent local
        # GEMMs on H100 (Section 5.2.1, MLP-2 discussion).
        accumulate_compute_interference=0.25,
        gemm_efficiency=0.92,
    )


def uniform_system(
    num_devices: int,
    flops_peak: float = 20.0 * TFLOP,
    link_bandwidth: float = 50.0 * GB,
    memory_bandwidth: float = 2000.0 * GB,
    memory_capacity: float = 64 * GB,
    name: str = "uniform",
) -> MachineSpec:
    """A synthetic homogeneous node, handy for tests and scaling studies."""
    topology = Topology.uniform(
        num_devices, link_bandwidth=link_bandwidth, self_bandwidth=memory_bandwidth
    )
    return MachineSpec(
        name=name,
        num_devices=num_devices,
        flops_peak=flops_peak,
        memory_bandwidth=memory_bandwidth,
        memory_capacity=memory_capacity,
        topology=topology,
    )


def hierarchical_system(
    num_nodes: int,
    devices_per_node: int,
    flops_peak: float = 20.0 * TFLOP,
    intra_node_bandwidth: float = 200.0 * GB,
    inter_node_bandwidth: float = 25.0 * GB,
    memory_bandwidth: float = 2000.0 * GB,
    memory_capacity: float = 64 * GB,
    name: str = "cluster",
) -> MachineSpec:
    """A multi-node cluster with fast intra-node and slower inter-node links.

    The paper's experiments are single-node, but the algorithm (and the
    one-sided primitives it relies on) are explicitly designed for RDMA-style
    inter-node operation, so the model supports it for extension studies.
    """
    num_devices = num_nodes * devices_per_node
    intra = Link(intra_node_bandwidth, 2.0e-6, LinkKind.INTRA_NODE)
    inter = Link(inter_node_bandwidth, 5.0e-6, LinkKind.INTER_NODE)
    hbm = Link(memory_bandwidth, 1.0e-7, LinkKind.SELF)

    overrides: Dict[tuple, Link] = {}
    for src in range(num_devices):
        for dst in range(num_devices):
            if src == dst:
                continue
            same_node = src // devices_per_node == dst // devices_per_node
            overrides[(src, dst)] = intra if same_node else inter
    topology = Topology(num_devices, inter, hbm, overrides)
    return MachineSpec(
        name=name,
        num_devices=num_devices,
        flops_peak=flops_peak,
        memory_bandwidth=memory_bandwidth,
        memory_capacity=memory_capacity,
        topology=topology,
    )


SYSTEMS = {
    "pvc": pvc_system,
    "h100": h100_system,
}


def get_system(name: str, num_devices: int | None = None) -> MachineSpec:
    """Look up a named system preset, optionally overriding its device count."""
    key = name.lower()
    if key not in SYSTEMS:
        raise KeyError(f"unknown system '{name}'; available: {sorted(SYSTEMS)}")
    factory = SYSTEMS[key]
    if num_devices is None:
        return factory()
    return factory(num_devices)
