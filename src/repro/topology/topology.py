"""Interconnect topology: per-pair link lookup and transfer-time estimation."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.topology.links import Link, LinkKind
from repro.util.validation import check_positive_int


class Topology:
    """Bandwidth/latency model between ``num_devices`` devices.

    A topology is a dense map from ordered device pairs to :class:`Link`
    objects.  Local (same-device) accesses use a dedicated "self" link whose
    bandwidth is the device's memory bandwidth, so that even local tile copies
    have a non-zero modelled cost.

    The class is intentionally backend-agnostic: the PGAS runtime asks it for
    transfer times, and the cost model asks it for bandwidths when estimating
    schedules.
    """

    def __init__(
        self,
        num_devices: int,
        default_link: Link,
        self_link: Link,
        overrides: Optional[Dict[Tuple[int, int], Link]] = None,
    ) -> None:
        self.num_devices = check_positive_int(num_devices, "num_devices")
        self._default_link = default_link
        self._self_link = self_link
        self._links: Dict[Tuple[int, int], Link] = dict(overrides or {})
        for (src, dst) in self._links:
            self._check_device(src)
            self._check_device(dst)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def uniform(
        cls,
        num_devices: int,
        link_bandwidth: float,
        link_latency: float = 2.0e-6,
        self_bandwidth: float = 1.0e12,
        self_latency: float = 1.0e-7,
    ) -> "Topology":
        """All-to-all topology with identical links between distinct devices."""
        default = Link(link_bandwidth, link_latency, LinkKind.INTRA_NODE)
        self_link = Link(self_bandwidth, self_latency, LinkKind.SELF)
        return cls(num_devices, default, self_link)

    @classmethod
    def from_function(
        cls,
        num_devices: int,
        link_fn: Callable[[int, int], Link],
        self_link: Optional[Link] = None,
    ) -> "Topology":
        """Build a topology by evaluating ``link_fn`` on every ordered pair."""
        overrides: Dict[Tuple[int, int], Link] = {}
        default = None
        for src in range(num_devices):
            for dst in range(num_devices):
                if src == dst:
                    continue
                link = link_fn(src, dst)
                overrides[(src, dst)] = link
                default = default or link
        if default is None:
            default = Link(1.0e12, 0.0, LinkKind.SELF)
        if self_link is None:
            self_link = Link(1.0e12, 1.0e-7, LinkKind.SELF)
        return cls(num_devices, default, self_link, overrides)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.num_devices:
            raise ValueError(
                f"device {device} out of range for topology with "
                f"{self.num_devices} devices"
            )

    def link(self, src: int, dst: int) -> Link:
        """Return the link used for transfers from ``src`` to ``dst``."""
        self._check_device(src)
        self._check_device(dst)
        if src == dst:
            return self._self_link
        return self._links.get((src, dst), self._default_link)

    def bandwidth(self, src: int, dst: int) -> float:
        """Unidirectional bandwidth in bytes/s between two devices."""
        return self.link(src, dst).bandwidth

    def latency(self, src: int, dst: int) -> float:
        """One-way latency in seconds between two devices."""
        return self.link(src, dst).latency

    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Modelled time to move ``nbytes`` from ``src`` to ``dst``."""
        return self.link(src, dst).transfer_time(nbytes)

    def is_local(self, src: int, dst: int) -> bool:
        return src == dst

    def min_remote_bandwidth(self) -> float:
        """Slowest link bandwidth between distinct devices (bottleneck tier)."""
        if self.num_devices == 1:
            return self._self_link.bandwidth
        candidates = [self._default_link.bandwidth]
        candidates.extend(link.bandwidth for link in self._links.values())
        return min(candidates)

    def max_remote_bandwidth(self) -> float:
        """Fastest link bandwidth between distinct devices."""
        if self.num_devices == 1:
            return self._self_link.bandwidth
        candidates = [self._default_link.bandwidth]
        candidates.extend(link.bandwidth for link in self._links.values())
        return max(candidates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(num_devices={self.num_devices}, "
            f"default={self._default_link!r})"
        )
