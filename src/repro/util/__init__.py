"""Utility foundations shared by every subsystem.

The most important pieces live in :mod:`repro.util.indexing`: the
:class:`~repro.util.indexing.Interval` and :class:`~repro.util.indexing.Rect`
types implement the "slicing (index arithmetic)" that the paper's universal
algorithm is built on.  Everything that touches tile bounds, overlapping-tile
queries, or global/local offset conversion goes through these types.
"""

from repro.util.indexing import (
    Interval,
    Rect,
    ceil_div,
    split_extent,
    block_bounds,
    intersect_intervals,
    intersect_rects,
)
from repro.util.validation import (
    check_positive_int,
    check_non_negative_int,
    check_in_range,
    check_divides,
    check_matrix,
    ReproError,
    ShapeError,
    PartitionError,
    ReplicationError,
)
from repro.util.rng import make_rng, random_matrix
from repro.util.logging import format_kv, get_logger, log_event

__all__ = [
    "Interval",
    "Rect",
    "ceil_div",
    "split_extent",
    "block_bounds",
    "intersect_intervals",
    "intersect_rects",
    "check_positive_int",
    "check_non_negative_int",
    "check_in_range",
    "check_divides",
    "check_matrix",
    "ReproError",
    "ShapeError",
    "PartitionError",
    "ReplicationError",
    "make_rng",
    "random_matrix",
    "format_kv",
    "get_logger",
    "log_event",
]
