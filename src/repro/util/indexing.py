"""Index arithmetic ("slicing") primitives.

The universal one-sided algorithm works by computing, for every stationary
tile a process owns, which tiles of the other two operands overlap the rows
and columns spanned by that tile.  All of that arithmetic is expressed in
terms of half-open integer intervals and 2-D rectangles of such intervals.

These types are deliberately tiny, immutable, and allocation-cheap: op
generation for a large tile grid creates many thousands of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div numerator must be non-negative, got {a}")
    return -(-a // b)


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open integer interval ``[start, stop)``.

    Used for row ranges, column ranges, and the m/n/k bounds of local matrix
    multiply operations.  An empty interval has ``stop <= start``.
    """

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ValueError(
                f"Interval stop ({self.stop}) must be >= start ({self.start})"
            )

    @property
    def extent(self) -> int:
        """Number of indices covered by the interval."""
        return self.stop - self.start

    def __len__(self) -> int:
        return self.extent

    def __bool__(self) -> bool:
        return self.extent > 0

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.stop

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.stop))

    def shift(self, offset: int) -> "Interval":
        """Return the interval translated by ``offset``."""
        return Interval(self.start + offset, self.stop + offset)

    def intersect(self, other: "Interval") -> "Interval":
        """Return the overlap of two intervals (possibly empty).

        The empty result is normalised to ``[lo, lo)`` where ``lo`` is the
        maximum of the two starts, so that ``extent == 0``.
        """
        lo = max(self.start, other.start)
        hi = min(self.stop, other.stop)
        if hi < lo:
            hi = lo
        return Interval(lo, hi)

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share at least one index."""
        return max(self.start, other.start) < min(self.stop, other.stop)

    def contains_interval(self, other: "Interval") -> bool:
        """True if ``other`` is entirely inside this interval."""
        if not other:
            return True
        return self.start <= other.start and other.stop <= self.stop

    def localize(self, origin: int) -> "Interval":
        """Convert global indices to indices relative to ``origin``.

        This is the "global-to-local offset" conversion mentioned in the
        paper's Algorithm 1 footnote.
        """
        return Interval(self.start - origin, self.stop - origin)

    def as_slice(self) -> slice:
        """Return the equivalent Python :class:`slice`."""
        return slice(self.start, self.stop)

    def split(self, parts: int) -> Tuple["Interval", ...]:
        """Split into ``parts`` nearly equal contiguous sub-intervals.

        The first ``extent % parts`` pieces get one extra element, mirroring
        the block partitioning convention used by :func:`split_extent`.
        """
        pieces = split_extent(self.extent, parts)
        out = []
        cursor = self.start
        for length in pieces:
            out.append(Interval(cursor, cursor + length))
            cursor += length
        return tuple(out)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.start}, {self.stop})"


def intersect_intervals(a: Interval, b: Interval) -> Interval:
    """Functional form of :meth:`Interval.intersect`."""
    return a.intersect(b)


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle of indices: a row interval x a column interval.

    ``Rect`` is the 2-D "slice" object handed to ``overlapping_tiles`` and
    returned from ``tile_bounds``.
    """

    rows: Interval
    cols: Interval

    @staticmethod
    def from_bounds(row_start: int, row_stop: int, col_start: int, col_stop: int) -> "Rect":
        return Rect(Interval(row_start, row_stop), Interval(col_start, col_stop))

    @staticmethod
    def full(shape: Sequence[int]) -> "Rect":
        """The rectangle covering an entire ``(rows, cols)`` matrix."""
        return Rect(Interval(0, int(shape[0])), Interval(0, int(shape[1])))

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows.extent, self.cols.extent)

    @property
    def size(self) -> int:
        """Number of elements covered."""
        return self.rows.extent * self.cols.extent

    def __bool__(self) -> bool:
        return bool(self.rows) and bool(self.cols)

    def intersect(self, other: "Rect") -> "Rect":
        return Rect(self.rows.intersect(other.rows), self.cols.intersect(other.cols))

    def overlaps(self, other: "Rect") -> bool:
        return self.rows.overlaps(other.rows) and self.cols.overlaps(other.cols)

    def contains(self, other: "Rect") -> bool:
        return self.rows.contains_interval(other.rows) and self.cols.contains_interval(
            other.cols
        )

    def shift(self, row_offset: int, col_offset: int) -> "Rect":
        return Rect(self.rows.shift(row_offset), self.cols.shift(col_offset))

    def localize(self, origin: "Rect") -> "Rect":
        """Express this rectangle relative to the origin rectangle's corner."""
        return Rect(
            self.rows.localize(origin.rows.start),
            self.cols.localize(origin.cols.start),
        )

    def as_slices(self) -> Tuple[slice, slice]:
        """Return ``(row_slice, col_slice)`` for NumPy indexing."""
        return (self.rows.as_slice(), self.cols.as_slice())

    def transpose(self) -> "Rect":
        return Rect(self.cols, self.rows)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Rect(rows={self.rows!r}, cols={self.cols!r})"


def intersect_rects(a: Rect, b: Rect) -> Rect:
    """Functional form of :meth:`Rect.intersect`."""
    return a.intersect(b)


def split_extent(extent: int, parts: int) -> Tuple[int, ...]:
    """Split ``extent`` indices into ``parts`` contiguous nearly-equal blocks.

    The first ``extent % parts`` blocks receive one extra element.  Blocks may
    be empty when ``parts > extent``; callers that cannot tolerate empty tiles
    must validate beforehand.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if extent < 0:
        raise ValueError(f"extent must be non-negative, got {extent}")
    base = extent // parts
    remainder = extent % parts
    return tuple(base + 1 if i < remainder else base for i in range(parts))


def block_bounds(extent: int, parts: int, index: int) -> Interval:
    """Bounds of block ``index`` when ``extent`` is split into ``parts`` blocks.

    Consistent with :func:`split_extent`: the first ``extent % parts`` blocks
    are one element longer.
    """
    if not 0 <= index < parts:
        raise ValueError(f"block index {index} out of range for {parts} parts")
    base = extent // parts
    remainder = extent % parts
    if index < remainder:
        start = index * (base + 1)
        stop = start + base + 1
    else:
        start = remainder * (base + 1) + (index - remainder) * base
        stop = start + base
    return Interval(start, stop)


def block_index_range(extent: int, parts: int, query: Interval) -> Tuple[int, int]:
    """Return the half-open range of block indices whose bounds overlap ``query``.

    This is the fast path behind ``overlapping_tiles`` for plain block
    partitionings: instead of scanning every block we locate the first and
    last overlapping block index directly.
    """
    if not query:
        return (0, 0)
    query = query.intersect(Interval(0, extent))
    if not query:
        return (0, 0)
    base = extent // parts
    remainder = extent % parts

    def locate(position: int) -> int:
        # Position of the block containing global index `position`.
        boundary = remainder * (base + 1)
        if base == 0:
            # All content lives in the first `remainder` blocks of length 1.
            return min(position, parts - 1)
        if position < boundary:
            return position // (base + 1)
        return remainder + (position - boundary) // base

    first = locate(query.start)
    last = locate(query.stop - 1)
    return (first, last + 1)
