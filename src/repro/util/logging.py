"""Structured logging helpers.

Every subsystem obtains its logger through :func:`get_logger` so the whole
library shares one namespace (``repro.*``) and can be silenced or redirected
by downstream applications with a single call.
"""

from __future__ import annotations

import logging
from typing import Optional

_ROOT_NAME = "repro"
_configured = False


def _ensure_configured() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.NullHandler()
        root.addHandler(handler)
    _configured = True


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a library logger, rooted at the ``repro`` namespace."""
    _ensure_configured()
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a console handler to the library root logger (for examples/benchmarks)."""
    _ensure_configured()
    root = logging.getLogger(_ROOT_NAME)
    has_stream = any(isinstance(h, logging.StreamHandler) for h in root.handlers)
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(level)
