"""Structured logging helpers.

Every subsystem obtains its logger through :func:`get_logger` so the whole
library shares one namespace (``repro.*``) and can be silenced or redirected
by downstream applications with a single call.

Log records are **structured**: :func:`log_event` renders an event name plus
``key=value`` fields (:func:`format_kv`), and when a tracing span is active
(:mod:`repro.obs.tracing`) the record automatically carries the request's
``trace`` id — so a log line grep and a trace-viewer search meet on the same
identifier.
"""

from __future__ import annotations

import logging
from typing import Optional

from repro.obs.tracing import current_trace_id

_ROOT_NAME = "repro"
_configured = False


def _ensure_configured() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.NullHandler()
        root.addHandler(handler)
    _configured = True


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a library logger, rooted at the ``repro`` namespace."""
    _ensure_configured()
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def format_kv(**fields: object) -> str:
    """Render fields as sorted ``key=value`` pairs (values with spaces repr'd)."""
    parts = []
    for key in sorted(fields):
        value = fields[key]
        if isinstance(value, float):
            text = f"{value:.6g}"
        else:
            text = str(value)
        if " " in text or text == "":
            text = repr(text)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def log_event(logger: logging.Logger, event: str, *,
              level: int = logging.INFO, **fields: object) -> None:
    """Emit one structured record: ``event key=value ...``.

    When a tracing span is active, the record automatically gains a
    ``trace=<id>`` field so logs and exported traces cross-reference.  The
    formatting work is skipped entirely when ``level`` is not enabled for
    ``logger`` — structured logging on a silenced logger costs one check.
    """
    if not logger.isEnabledFor(level):
        return
    trace_id = current_trace_id()
    if trace_id is not None:
        fields.setdefault("trace", trace_id)
    body = format_kv(**fields)
    logger.log(level, "%s %s" % (event, body) if body else event)


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a console handler to the library root logger (for examples/benchmarks)."""
    _ensure_configured()
    root = logging.getLogger(_ROOT_NAME)
    has_stream = any(isinstance(h, logging.StreamHandler) for h in root.handlers)
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(level)
