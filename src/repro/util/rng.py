"""Deterministic random-number helpers.

Benchmarks and tests both need reproducible matrices.  The paper initializes
all matrices randomly (Artifact Description: "All matrices are randomly
initialized"); we use seeded :class:`numpy.random.Generator` instances so
every experiment is bit-reproducible across runs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

DEFAULT_SEED = 0xC0FFEE


def make_rng(seed: Optional[Union[int, np.random.Generator]] = None) -> np.random.Generator:
    """Return a NumPy Generator from a seed, an existing Generator, or the default."""
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def random_matrix(
    shape: Sequence[int],
    dtype: np.dtype = np.float32,
    seed: Optional[Union[int, np.random.Generator]] = None,
    scale: float = 1.0,
) -> np.ndarray:
    """Create a reproducible random matrix with values in ``[-scale, scale)``.

    FP32 by default to mirror the paper's FP32 GEMM experiments.
    """
    rng = make_rng(seed)
    data = rng.uniform(-scale, scale, size=tuple(int(s) for s in shape))
    return data.astype(dtype, copy=False)
