"""Argument validation helpers and the library's exception hierarchy.

Keeping validation centralized lets the distributed-matrix constructors and
the algorithm entry points raise consistent, descriptive errors, which in a
distributed setting is the difference between a one-line fix and a hung job.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ShapeError(ReproError):
    """Matrix or tile shapes are inconsistent with the requested operation."""


class PartitionError(ReproError):
    """A partition descriptor is invalid for the given matrix/process count."""


class ReplicationError(ReproError):
    """A replication factor is invalid for the given number of processes."""


class CommunicationError(ReproError):
    """A one-sided operation targeted an invalid rank, replica, or region."""


class SchedulingError(ReproError):
    """IR lowering or execution scheduling failed."""


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_in_range(value: int, low: int, high: int, name: str) -> int:
    """Validate ``low <= value < high``."""
    value = int(value)
    if not low <= value < high:
        raise ValueError(f"{name} must be in [{low}, {high}), got {value}")
    return value


def check_divides(divisor: int, dividend: int, message: str) -> None:
    """Validate that ``divisor`` divides ``dividend`` exactly."""
    if divisor <= 0 or dividend % divisor != 0:
        raise ReplicationError(message)


def check_matrix(array: Any, name: str) -> np.ndarray:
    """Validate that ``array`` is a 2-D, non-empty, real-valued ndarray."""
    arr = np.asarray(array)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ShapeError(f"{name} must be non-empty, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.number):
        raise ShapeError(f"{name} must be numeric, got dtype {arr.dtype}")
    return arr


def check_matmul_shapes(a_shape: tuple, b_shape: tuple, c_shape: tuple | None = None) -> tuple:
    """Validate GEMM shape compatibility and return ``(m, n, k)``."""
    m, k = int(a_shape[0]), int(a_shape[1])
    kb, n = int(b_shape[0]), int(b_shape[1])
    if k != kb:
        raise ShapeError(
            f"inner dimensions do not match: A is {a_shape}, B is {b_shape}"
        )
    if c_shape is not None:
        cm, cn = int(c_shape[0]), int(c_shape[1])
        if (cm, cn) != (m, n):
            raise ShapeError(
                f"output shape {c_shape} does not match A @ B = ({m}, {n})"
            )
    return (m, n, k)
