"""Correctness tests: every baseline's reference run must equal A @ B."""

import numpy as np
import pytest

from repro.baselines import (
    Cannon,
    CosmaLike,
    OneAndHalfD,
    OneDRing,
    Summa,
    TwoAndHalfD,
)


@pytest.fixture
def operands():
    rng = np.random.default_rng(42)
    a = rng.standard_normal((40, 36))
    b = rng.standard_normal((36, 44))
    return a, b, a @ b


ALGORITHMS = [
    OneDRing(),
    Summa(),
    Summa(panel_width=5),
    Cannon(),
    OneAndHalfD(replication=2),
    OneAndHalfD(replication=4),
    TwoAndHalfD(replication=2),
    CosmaLike(),
]


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: f"{a.name}")
@pytest.mark.parametrize("num_procs", [1, 4, 8, 12])
def test_run_matches_numpy(operands, algorithm, num_procs):
    a, b, reference = operands
    result = algorithm.run(a, b, num_procs=num_procs)
    np.testing.assert_allclose(result, reference, rtol=1e-10, atol=1e-10)


@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: f"{a.name}")
def test_run_handles_awkward_shapes(algorithm):
    rng = np.random.default_rng(3)
    a = rng.standard_normal((17, 23))
    b = rng.standard_normal((23, 11))
    np.testing.assert_allclose(algorithm.run(a, b, num_procs=4), a @ b,
                               rtol=1e-10, atol=1e-10)


def test_cannon_strict_mode_rejects_non_square_counts():
    with pytest.raises(ValueError):
        Cannon(strict=True).simulate(64, 64, 64, __import__(
            "repro.topology.machines", fromlist=["uniform_system"]).uniform_system(12))


def test_one_and_half_d_invalid_replication():
    from repro.util.validation import ReplicationError

    with pytest.raises(ReplicationError):
        OneAndHalfD(replication=0)


def test_two_and_half_d_replication_must_divide_devices():
    from repro.topology.machines import uniform_system
    from repro.util.validation import ReplicationError

    with pytest.raises(ReplicationError):
        TwoAndHalfD(replication=5).simulate(64, 64, 64, uniform_system(12))
