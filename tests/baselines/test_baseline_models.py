"""Tests of the baselines' analytic time models and the COSMA selector."""

import pytest

from repro.baselines import (
    Cannon,
    CosmaLike,
    OneAndHalfD,
    OneDRing,
    Summa,
    TwoAndHalfD,
    select_cosma_decomposition,
)
from repro.baselines.base import BaselineResult
from repro.topology.machines import GB, h100_system, pvc_system, uniform_system


class TestSimulateBasics:
    @pytest.mark.parametrize("algorithm", [OneDRing(), Summa(), Cannon(),
                                           OneAndHalfD(2), TwoAndHalfD(2), CosmaLike()])
    def test_result_fields(self, algorithm):
        result = algorithm.simulate(4096, 4096, 4096, pvc_system(12))
        assert isinstance(result, BaselineResult)
        assert result.simulated_time > 0
        assert 0 < result.percent_of_peak <= 100
        assert result.compute_time > 0
        assert result.communication_bytes >= 0
        assert "algorithm" in result.summary()

    def test_larger_problems_take_longer(self):
        algorithm = Summa()
        machine = pvc_system(12)
        small = algorithm.simulate(1024, 1024, 1024, machine).simulated_time
        large = algorithm.simulate(4096, 4096, 4096, machine).simulated_time
        assert large > small

    def test_overlap_helps(self):
        machine = pvc_system(12)
        overlapped = Summa(overlap=True).simulate(8192, 8192, 8192, machine)
        sequential = Summa(overlap=False).simulate(8192, 8192, 8192, machine)
        assert overlapped.simulated_time <= sequential.simulated_time

    def test_h100_faster_than_pvc(self):
        shape = (8192, 8192, 8192)
        pvc = Summa().simulate(*shape, pvc_system(12)).simulated_time
        h100 = Summa().simulate(*shape, h100_system(8)).simulated_time
        assert h100 < pvc

    def test_cannon_reports_idle_devices_on_non_square_counts(self):
        result = Cannon().simulate(4096, 4096, 4096, pvc_system(12))
        assert result.metadata["idle_devices"] == 3

    def test_summa_grid_override(self):
        result = Summa(grid=(2, 6)).simulate(4096, 4096, 4096, pvc_system(12))
        assert result.metadata["grid"] == "2x6"

    def test_summa_grid_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Summa(grid=(5, 5)).simulate(64, 64, 64, pvc_system(12))


class TestReplicationTradeoffs:
    def test_25d_replication_reduces_communication(self):
        # 2.5D pays off when c stays below ~p^(1/3): at p=64 and c=4 the extra
        # layer reduction is outweighed by the smaller SUMMA broadcasts.
        machine = uniform_system(64, link_bandwidth=10 * GB)
        flat = TwoAndHalfD(replication=1).simulate(8192, 8192, 8192, machine)
        replicated = TwoAndHalfD(replication=4).simulate(8192, 8192, 8192, machine)
        assert replicated.communication_bytes < flat.communication_bytes

    def test_15d_replication_reduces_shift_traffic(self):
        machine = uniform_system(16, link_bandwidth=10 * GB)
        flat = OneAndHalfD(replication=1).simulate(4096, 4096, 65536, machine)
        replicated = OneAndHalfD(replication=4).simulate(4096, 4096, 65536, machine)
        assert replicated.communication_bytes < flat.communication_bytes


class TestCosmaSelector:
    def test_covers_all_processes(self):
        decomposition = select_cosma_decomposition(8192, 8192, 8192, 12)
        assert decomposition.processes == 12

    def test_square_problem_prefers_square_grid(self):
        decomposition = select_cosma_decomposition(8192, 8192, 8192, 16)
        assert {decomposition.pm, decomposition.pn} == {4}
        assert decomposition.pk == 1

    def test_tall_skinny_prefers_splitting_long_dimension(self):
        # n is enormous: splitting n avoids moving the big B/C panels.
        decomposition = select_cosma_decomposition(1024, 1 << 20, 1024, 8)
        assert decomposition.pn == 8

    def test_memory_budget_forces_replication_off(self):
        unlimited = select_cosma_decomposition(8192, 8192, 8192, 8, None)
        tight = select_cosma_decomposition(
            8192, 8192, 8192, 8, memory_budget_bytes=3 * 8192 * 8192 * 4 / 4
        )
        assert tight.memory_elements(8192, 8192, 8192) <= 3 * 8192 * 8192 / 4
        assert unlimited.communication_elements(8192, 8192, 8192) <= \
            tight.communication_elements(8192, 8192, 8192)

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError):
            select_cosma_decomposition(8192, 8192, 8192, 4, memory_budget_bytes=1024)

    def test_local_shapes_cover_problem(self):
        decomposition = select_cosma_decomposition(1000, 2000, 3000, 12)
        (am, ak), (bk, bn), (cm, cn) = decomposition.local_shapes(1000, 2000, 3000)
        assert am * decomposition.pm >= 1000
        assert bn * decomposition.pn >= 2000
        assert ak * decomposition.pk >= 3000

    def test_cosma_like_reports_decomposition(self):
        result = CosmaLike().simulate(8192, 49152, 12288, h100_system(8))
        assert "decomposition" in result.metadata
