"""Unit tests for the automatic partitioning selector (paper future-work hook)."""

import numpy as np
import pytest

from repro.bench.selector import PartitioningRecommendation, recommend_partitioning
from repro.bench.schemes import scheme_by_name
from repro.bench.workloads import Workload, mlp1_workload, mlp2_workload
from repro.core.matmul import universal_matmul
from repro.runtime.runtime import Runtime
from repro.topology.machines import pvc_system, uniform_system

MACHINE = uniform_system(4)
SMALL = Workload("small", 96, 80, 64)


class TestRecommendPartitioning:
    def test_returns_requested_number_of_candidates(self):
        recommendations = recommend_partitioning(MACHINE, SMALL, top_k=3,
                                                 replication_factors=[1, 2],
                                                 stationary_options=("B", "C"))
        assert len(recommendations) == 3
        assert all(isinstance(rec, PartitioningRecommendation) for rec in recommendations)

    def test_sorted_by_percent_of_peak(self):
        recommendations = recommend_partitioning(MACHINE, SMALL, top_k=5,
                                                 replication_factors=[1, 2],
                                                 stationary_options=("B", "C"))
        values = [rec.percent_of_peak for rec in recommendations]
        assert values == sorted(values, reverse=True)

    def test_memory_budget_excludes_replication(self):
        """A budget only slightly above one shard per matrix forbids replication."""
        itemsize = 4
        tight = sum(rows * cols for rows, cols in SMALL.shapes) * itemsize / 4 * 1.2
        recommendations = recommend_partitioning(MACHINE, SMALL, top_k=10,
                                                 memory_budget_bytes=tight,
                                                 replication_factors=[1, 2, 4],
                                                 stationary_options=("C",))
        assert recommendations
        assert all(rec.replication == (1, 1, 1) for rec in recommendations)

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError):
            recommend_partitioning(MACHINE, SMALL, memory_budget_bytes=16)

    def test_mlp1_recommendation_moves_only_a(self):
        """For the MLP-1 shape the selector must land on an A-moving family
        (column or inner product), matching the paper's Figure 2 analysis."""
        best = recommend_partitioning(pvc_system(12), mlp1_workload(8192),
                                      replication_factors=[1, 2],
                                      stationary_options=("B", "C"))[0]
        assert best.scheme.name in ("column", "inner")

    def test_mlp2_recommendation_avoids_moving_b(self):
        best = recommend_partitioning(pvc_system(12), mlp2_workload(8192),
                                      replication_factors=[1, 2],
                                      stationary_options=("B", "C"))[0]
        assert best.scheme.name in ("outer", "block")

    def test_describe_mentions_scheme_and_stationary(self):
        best = recommend_partitioning(MACHINE, SMALL, replication_factors=[1],
                                      stationary_options=("C",))[0]
        text = best.describe()
        assert best.scheme.label in text
        assert "Stationary" in text

    def test_build_matrices_and_multiply(self):
        """The recommendation is directly executable and numerically correct."""
        best = recommend_partitioning(MACHINE, SMALL, replication_factors=[1, 2],
                                      stationary_options=("B", "C"))[0]
        runtime = Runtime(machine=MACHINE)
        a, b, c = best.build_matrices(runtime, SMALL, dtype=np.float64)
        rng = np.random.default_rng(0)
        a_dense = rng.standard_normal((SMALL.m, SMALL.k))
        b_dense = rng.standard_normal((SMALL.k, SMALL.n))
        a.load_dense(a_dense)
        b.load_dense(b_dense)
        universal_matmul(a, b, c, stationary=best.stationary)
        np.testing.assert_allclose(c.to_dense(), a_dense @ b_dense, rtol=1e-9)

    def test_build_matrices_symbolic(self):
        best = recommend_partitioning(MACHINE, SMALL, replication_factors=[1],
                                      stationary_options=("C",))[0]
        runtime = Runtime(machine=MACHINE)
        a, b, c = best.build_matrices(runtime, SMALL, materialize=False)
        assert not a.materialized and not b.materialized and not c.materialized
