"""Sparse-sweep parity against the committed benchmark snapshot.

Pins both the simulated times (1e-9 relative) and the *winning partitionings*
of the structured-workload grid: the snapshot documents that the search picks
different partitions for 0.9-sparse and ragged-MoE shapes than for their
dense envelopes, and this guard keeps that capability from regressing.
"""

import json
import os
import sys

import pytest

_BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
)
SNAPSHOT = os.path.join(_BENCH_DIR, "results", "sparse_sweep.json")


@pytest.fixture(scope="module")
def sweep():
    if _BENCH_DIR not in sys.path:
        sys.path.insert(0, _BENCH_DIR)
    import bench_sparse_sweep

    return bench_sparse_sweep


class TestSparseSweepSnapshot:
    def test_snapshot_is_committed(self):
        assert os.path.exists(SNAPSHOT), "sparse sweep snapshot missing"

    def test_all_points_match(self, sweep):
        assert sweep.check_snapshot(SNAPSHOT) == 0

    def test_snapshot_demonstrates_winner_changes(self):
        """Sparse members must beat their envelope with a different plan."""
        with open(SNAPSHOT, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        points = payload["points"]
        envelopes = {
            (p["machine"], p["group"]): p for p in points if p["structure"] == "dense"
        }
        changed = 0
        for point in points:
            if point["structure"] == "dense":
                continue
            envelope = envelopes[(point["machine"], point["group"])]
            assert point["simulated_time"] <= envelope["simulated_time"] * (1 + 1e-12)
            if (point["scheme"], point["stationary"]) != (
                    envelope["scheme"], envelope["stationary"]):
                changed += 1
        # Every density<=0.25 and ragged-MoE point flips its winner; the
        # all-live control point must NOT (it is bit-identical to dense).
        assert changed >= 8
        controls = [p for p in points if p["structure"] != "dense"
                    and p["workload"].endswith("_d1_s1")]
        assert controls
        for control in controls:
            envelope = envelopes[(control["machine"], control["group"])]
            assert control["simulated_time"] == envelope["simulated_time"]
