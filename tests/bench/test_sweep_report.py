"""Unit tests for the sweep driver and reporting."""

import pytest

from repro.baselines import OneDRing, Summa
from repro.bench.report import format_table, print_figure, series_from_points
from repro.bench.schemes import scheme_by_name, ua_schemes
from repro.bench.sweep import (
    SweepPoint,
    best_per_scheme,
    run_baseline_series,
    run_cosma_series,
    run_dtensor_series,
    run_ua_point,
    run_ua_sweep,
    valid_replication_factors,
)
from repro.bench.workloads import mlp1_workload, mlp2_workload
from repro.topology.machines import uniform_system

# A machine and workload small enough for sweeping in unit tests.
MACHINE = uniform_system(4)
SMALL_MLP1 = mlp1_workload(1024).scaled(1 / 64)
SMALL_MLP2 = mlp2_workload(1024).scaled(1 / 64)


class TestReplicationFactors:
    def test_divisors_of_device_count(self):
        assert valid_replication_factors(12) == [1, 2, 3, 4, 6, 12]

    def test_limit_applied(self):
        assert valid_replication_factors(12, [1, 2, 5]) == [1, 2]


class TestRunUaPoint:
    def test_point_fields(self):
        point = run_ua_point(MACHINE, SMALL_MLP1, scheme_by_name("column"),
                             stationary="C")
        assert point.series == "UA - Column"
        assert point.batch == SMALL_MLP1.m
        assert 0 < point.percent_of_peak <= 100
        assert point.simulated_time > 0
        assert point.stationary == "C"

    def test_replication_label_uniform(self):
        point = SweepPoint("s", "w", 1024, 50.0, 0.01, replication=(2, 2, 2))
        assert point.replication_label == "2"

    def test_replication_label_mixed(self):
        point = SweepPoint("s", "w", 1024, 50.0, 0.01, replication=(2, 2, 1))
        assert point.replication_label == "2-1"

    def test_row_dict(self):
        point = run_ua_point(MACHINE, SMALL_MLP1, scheme_by_name("row"), stationary="C")
        row = point.row()
        assert row["series"] == "UA - Row"
        assert "percent_of_peak" in row and "simulated_time_ms" in row


class TestSweep:
    def test_sweep_covers_all_combinations(self):
        schemes = [scheme_by_name("column"), scheme_by_name("row")]
        points = run_ua_sweep(MACHINE, [SMALL_MLP1], schemes=schemes,
                              replication_factors=[1, 2], stationary_options=("C",))
        assert len(points) == 2 * 2 * 1

    def test_mixed_output_replication_expands_sweep(self):
        schemes = [scheme_by_name("outer")]
        base = run_ua_sweep(MACHINE, [SMALL_MLP2], schemes=schemes,
                            replication_factors=[1, 2], stationary_options=("B",))
        mixed = run_ua_sweep(MACHINE, [SMALL_MLP2], schemes=schemes,
                             replication_factors=[1, 2], stationary_options=("B",),
                             mixed_output_replication=True)
        assert len(mixed) == 2 * len(base)

    def test_best_per_scheme_keeps_one_bar_per_series_batch(self):
        schemes = [scheme_by_name("column"), scheme_by_name("block")]
        points = run_ua_sweep(MACHINE, [SMALL_MLP1], schemes=schemes,
                              replication_factors=[1, 2],
                              stationary_options=("B", "C"))
        best = best_per_scheme(points)
        assert len(best) == 2
        for point in best:
            candidates = [p for p in points
                          if p.series == point.series and p.batch == point.batch]
            assert point.percent_of_peak == max(p.percent_of_peak for p in candidates)

    def test_default_schemes_are_all_six(self):
        points = run_ua_sweep(MACHINE, [SMALL_MLP1], replication_factors=[1],
                              stationary_options=("C",))
        assert len({p.series for p in points}) == 6


class TestComparatorSeries:
    def test_dtensor_series_row_and_column(self):
        points = run_dtensor_series(MACHINE, [SMALL_MLP1, SMALL_MLP2])
        assert {p.series for p in points} == {"DT - Row", "DT - Column"}
        assert len(points) == 4

    def test_cosma_series(self):
        points = run_cosma_series(MACHINE, [SMALL_MLP1])
        assert points[0].series == "COSMA-NCCL"
        assert "decomposition" in points[0].extra

    def test_baseline_series(self):
        points = run_baseline_series(MACHINE, [SMALL_MLP1], [OneDRing(), Summa()])
        assert {p.series for p in points} == {"1d_ring", "summa"}


class TestReporting:
    @pytest.fixture
    def points(self):
        return run_dtensor_series(MACHINE, [SMALL_MLP1, SMALL_MLP2])

    def test_format_table_contains_all_series(self, points):
        table = format_table(points)
        assert "DT - Row" in table and "DT - Column" in table
        assert "percent_of_peak" in table

    def test_format_table_empty(self):
        assert format_table([]) == "(no results)"

    def test_series_from_points_sorted_by_batch(self, points):
        series = series_from_points(points)
        for values in series.values():
            batches = [batch for batch, _ in values]
            assert batches == sorted(batches)

    def test_print_figure_output(self, capsys, points):
        text = print_figure("Test Figure", points)
        captured = capsys.readouterr()
        assert "Test Figure" in captured.out
        assert "DT - Row" in text


class TestParallelSweep:
    def test_jobs_parameter_preserves_results_and_order(self):
        serial = run_ua_sweep(MACHINE, [SMALL_MLP1],
                              schemes=[scheme_by_name("column"),
                                       scheme_by_name("outer")])
        parallel = run_ua_sweep(MACHINE, [SMALL_MLP1],
                                schemes=[scheme_by_name("column"),
                                         scheme_by_name("outer")],
                                jobs=2)
        assert len(parallel) == len(serial) > 0
        assert [p.row() for p in parallel] == [p.row() for p in serial]

    def test_jobs_one_and_none_are_serial(self):
        none_jobs = run_ua_sweep(MACHINE, [SMALL_MLP1],
                                 schemes=[scheme_by_name("column")],
                                 replication_factors=[1])
        one_job = run_ua_sweep(MACHINE, [SMALL_MLP1],
                               schemes=[scheme_by_name("column")],
                               replication_factors=[1], jobs=1)
        assert [p.row() for p in one_job] == [p.row() for p in none_jobs]
