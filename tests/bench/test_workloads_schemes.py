"""Unit tests for benchmark workloads and partitioning schemes."""

import pytest

from repro.bench.schemes import PartitioningScheme, aspect_grid, scheme_by_name, ua_schemes
from repro.bench.workloads import (
    BATCH_SIZES,
    MLP_HIDDEN,
    MLP_RATIO,
    WORKLOAD_SCHEMA_VERSION,
    Workload,
    attention_workload,
    block_sparse_workload,
    mlp1_workload,
    mlp2_workload,
    moe_workload,
    rectangular_series,
    square_workload,
    tall_skinny_workload,
)
from repro.bench.workloads import mlp1_series, mlp2_series
from repro.core.structure import BlockSparse, MoERagged, structure_from_dict


class TestWorkloads:
    def test_mlp1_dimensions_match_paper(self):
        """MLP-1: m = batch, n = 48K, k = 12K."""
        workload = mlp1_workload(4096)
        assert workload.m == 4096
        assert workload.n == 48 * 1024
        assert workload.k == 12 * 1024

    def test_mlp2_dimensions_match_paper(self):
        """MLP-2: m = batch, n = 12K, k = 48K."""
        workload = mlp2_workload(2048)
        assert workload.n == 12 * 1024
        assert workload.k == 48 * 1024

    def test_paper_batch_sizes(self):
        assert BATCH_SIZES == (1024, 2048, 4096, 8192)

    def test_paper_constants(self):
        assert MLP_HIDDEN == 12 * 1024
        assert MLP_RATIO == 4

    def test_flops(self):
        workload = Workload("w", 10, 20, 30)
        assert workload.flops == 2.0 * 10 * 20 * 30

    def test_shapes(self):
        workload = Workload("w", 10, 20, 30)
        assert workload.shapes == ((10, 30), (30, 20), (10, 20))

    def test_square(self):
        workload = square_workload(512)
        assert workload.m == workload.n == workload.k == 512

    def test_scaled(self):
        workload = mlp1_workload(1024).scaled(0.125)
        assert workload.m == 128
        assert workload.k == 1536

    def test_series_lengths(self):
        assert len(mlp1_series()) == 4
        assert len(mlp2_series((1024, 2048))) == 2

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Workload("bad", 0, 10, 10)

    def test_dict_roundtrip(self):
        workload = mlp1_workload(2048)
        assert Workload.from_dict(workload.to_dict()) == workload

    def test_to_dict_is_json_friendly(self):
        import json

        payload = json.loads(json.dumps(attention_workload(512).to_dict()))
        assert Workload.from_dict(payload) == attention_workload(512)

    def test_attention_is_square_output_tiny_k(self):
        workload = attention_workload(2048, head_dim=128)
        assert workload.m == workload.n == 2048
        assert workload.k == 128

    def test_tall_skinny_is_tall(self):
        workload = tall_skinny_workload(100000)
        assert workload.m > 100 * workload.n

    def test_rectangular_series_holds_flops_constant(self):
        series = rectangular_series(base=1024, aspects=(1, 2, 4))
        assert len(series) == 3
        flops = {workload.flops for workload in series}
        assert len(flops) == 1
        assert series[-1].n > series[0].n


class TestStructuredWorkloads:
    def test_block_sparse_factory_hits_requested_density(self):
        workload = block_sparse_workload(256, 512, 512, density=0.25,
                                         block_k=64, block_n=64, seed=1)
        structure = workload.structure
        assert isinstance(structure, BlockSparse)
        assert structure.density == pytest.approx(0.25, abs=1 / 64)
        assert workload.effective_flops < workload.flops

    def test_block_sparse_factory_is_deterministic(self):
        one = block_sparse_workload(256, 512, 512, density=0.3, seed=7)
        two = block_sparse_workload(256, 512, 512, density=0.3, seed=7)
        assert one == two
        other = block_sparse_workload(256, 512, 512, density=0.3, seed=8)
        assert one.structure != other.structure

    def test_moe_factory_envelope_is_expert_aligned(self):
        workload = moe_workload(4, 64, 512, 512, expert_tokens=[64, 5, 9, 1])
        assert workload.m == 4 * 64
        assert isinstance(workload.structure, MoERagged)
        assert workload.structure.total_tokens == 79
        assert workload.effective_flops == 2.0 * 79 * 512 * 512

    def test_moe_factory_random_split_is_deterministic(self):
        assert moe_workload(8, 32, 128, 128, seed=3) == moe_workload(8, 32, 128, 128, seed=3)

    def test_structure_envelope_mismatch_rejected(self):
        with pytest.raises(ValueError, match="envelope"):
            Workload("bad", 100, 64, 64,
                     structure=MoERagged(expert_tokens=(10, 10), capacity=64))
        with pytest.raises(ValueError, match="block"):
            Workload("bad", 64, 64, 64,
                     structure=BlockSparse(block_k=32, block_n=32,
                                           mask=((True,),)))

    def test_scaled_rejects_structured_workloads(self):
        workload = block_sparse_workload(128, 128, 128, density=0.5)
        with pytest.raises(ValueError, match="dense"):
            workload.scaled(0.5)

    def test_dict_roundtrip_carries_structure(self):
        import json

        for workload in (
            block_sparse_workload(256, 512, 512, density=0.25, seed=1),
            moe_workload(4, 64, 512, 512, expert_tokens=[64, 5, 9, 1]),
        ):
            payload = json.loads(json.dumps(workload.to_dict()))
            assert payload["schema"] == WORKLOAD_SCHEMA_VERSION
            assert Workload.from_dict(payload) == workload

    def test_schema_v1_payloads_deserialize_as_dense(self):
        legacy = {"name": "old", "m": 128, "n": 256, "k": 512}
        workload = Workload.from_dict(legacy)
        assert workload.structure.is_dense
        assert workload == Workload("old", 128, 256, 512)

    def test_unknown_structure_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown workload structure"):
            structure_from_dict({"kind": "butterfly"})


class TestAspectGrid:
    def test_square_shape_gets_square_grid(self):
        assert aspect_grid((1000, 1000), 16) == (4, 4)

    def test_tall_shape_gets_tall_grid(self):
        rows, cols = aspect_grid((100000, 100), 12)
        assert rows > cols

    def test_wide_shape_gets_wide_grid(self):
        rows, cols = aspect_grid((100, 100000), 12)
        assert cols > rows

    def test_product_equals_procs(self):
        for procs in (2, 6, 12, 8):
            rows, cols = aspect_grid((123, 456), procs)
            assert rows * cols == procs


class TestSchemes:
    def test_six_schemes_defined(self):
        names = {scheme.name for scheme in ua_schemes()}
        assert names == {"column", "row", "block", "inner", "outer", "traditional"}

    def test_labels_match_figure_legend(self):
        labels = {scheme.label for scheme in ua_schemes()}
        assert "UA - Column" in labels
        assert "UA - Outer Prod." in labels

    def test_scheme_by_name(self):
        assert scheme_by_name("column").name == "column"
        assert scheme_by_name("OUTER").name == "outer"

    def test_scheme_by_name_unknown(self):
        with pytest.raises(KeyError):
            scheme_by_name("diagonal")

    def test_partitions_built_per_matrix(self):
        workload = mlp1_workload(1024)
        scheme = scheme_by_name("outer")
        part_a, part_b, part_c = scheme.partitions(workload, 12, 12, 12)
        assert part_a.name == "column"
        assert part_b.name == "row"
        assert part_c.name == "block"

    def test_column_scheme_only_moves_a(self):
        """Behavioural check of the scheme table's key claim."""
        from repro.bench.sweep import run_ua_point
        from repro.topology.machines import uniform_system

        point = run_ua_point(uniform_system(4), mlp1_workload(1024).scaled(1 / 64),
                             scheme_by_name("column"), stationary="C")
        assert point.extra["remote_accumulate_bytes"] == 0

    def test_outer_scheme_only_accumulates(self):
        from repro.bench.sweep import run_ua_point
        from repro.topology.machines import uniform_system

        point = run_ua_point(uniform_system(4), mlp2_workload(1024).scaled(1 / 64),
                             scheme_by_name("outer"), stationary="B")
        assert point.extra["remote_get_bytes"] == 0
        assert point.extra["remote_accumulate_bytes"] > 0
