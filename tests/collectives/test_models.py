"""Unit tests for collective time models."""

import pytest

from repro.collectives.models import (
    CollectiveModel,
    allgather_time,
    allreduce_time,
    alltoall_time,
    broadcast_time,
    reduce_scatter_time,
)
from repro.topology.machines import h100_system, pvc_system, uniform_system


@pytest.fixture
def machine():
    return uniform_system(8, link_bandwidth=100.0e9)


class TestBasicProperties:
    def test_single_member_free(self, machine):
        assert broadcast_time(machine, [0], 1 << 20) == 0.0
        assert allreduce_time(machine, [3], 1 << 20) == 0.0
        assert allgather_time(machine, [2], 1 << 20) == 0.0

    def test_zero_bytes_free(self, machine):
        ranks = list(range(4))
        assert broadcast_time(machine, ranks, 0) == 0.0
        assert allreduce_time(machine, ranks, 0) == 0.0

    def test_allreduce_twice_reduce_scatter(self, machine):
        ranks = list(range(4))
        nbytes = 1 << 24
        assert allreduce_time(machine, ranks, nbytes) == pytest.approx(
            2 * reduce_scatter_time(machine, ranks, nbytes)
        )

    def test_allgather_equals_reduce_scatter(self, machine):
        ranks = list(range(4))
        assert allgather_time(machine, ranks, 1 << 20) == \
            reduce_scatter_time(machine, ranks, 1 << 20)

    def test_larger_groups_cost_more_latency(self, machine):
        small = broadcast_time(machine, list(range(2)), 1 << 10)
        large = broadcast_time(machine, list(range(8)), 1 << 10)
        assert large > small

    def test_alltoall_scales_with_group(self, machine):
        small = alltoall_time(machine, list(range(2)), 1 << 20)
        large = alltoall_time(machine, list(range(8)), 1 << 20)
        assert large > small

    def test_times_scale_with_bytes(self, machine):
        ranks = list(range(4))
        assert allreduce_time(machine, ranks, 2 << 24) > allreduce_time(machine, ranks, 1 << 24)


class TestMachineSensitivity:
    def test_h100_collectives_faster_than_pvc(self):
        nbytes = 1 << 28
        pvc = allreduce_time(pvc_system(12), list(range(8)), nbytes)
        h100 = allreduce_time(h100_system(8), list(range(8)), nbytes)
        assert h100 < pvc

    def test_bottleneck_link_used(self):
        machine = pvc_system(12)
        # A group containing only the two tiles of one GPU uses the fast fabric.
        fast = allgather_time(machine, [0, 1], 1 << 26)
        slow = allgather_time(machine, [0, 2], 1 << 26)
        assert fast < slow


class TestFacade:
    def test_collective_model_delegates(self, machine):
        model = CollectiveModel(machine)
        ranks = list(range(4))
        assert model.broadcast(ranks, 1024) == broadcast_time(machine, ranks, 1024)
        assert model.allreduce(ranks, 1024) == allreduce_time(machine, ranks, 1024)
        assert model.allgather(ranks, 1024) == allgather_time(machine, ranks, 1024)
        assert model.reduce_scatter(ranks, 1024) == reduce_scatter_time(machine, ranks, 1024)
        assert model.alltoall(ranks, 1024) == alltoall_time(machine, ranks, 1024)
