"""Unit tests for the one-sided implementations of collectives."""

import numpy as np
import pytest

from repro.collectives.ops import allgather, allreduce, broadcast, reduce_scatter
from repro.runtime.runtime import Runtime
from repro.topology.machines import uniform_system


@pytest.fixture
def runtime():
    return Runtime(machine=uniform_system(4))


def per_rank_buffers(shape, ranks, value_fn):
    return {rank: np.full(shape, value_fn(rank), dtype=np.float32) for rank in ranks}


class TestBroadcast:
    def test_all_ranks_receive_root_value(self, runtime):
        ranks = [0, 1, 2, 3]
        buffers = per_rank_buffers((2, 2), ranks, lambda r: float(r))
        out = broadcast(runtime, buffers, ranks, root=2)
        for rank in ranks:
            assert np.all(out[rank] == 2.0)

    def test_subgroup_broadcast(self, runtime):
        ranks = [1, 3]
        buffers = per_rank_buffers((2, 2), ranks, lambda r: float(r))
        out = broadcast(runtime, buffers, ranks, root=3)
        assert np.all(out[1] == 3.0)

    def test_root_must_be_member(self, runtime):
        buffers = per_rank_buffers((2, 2), [0, 1], lambda r: 0.0)
        with pytest.raises(ValueError):
            broadcast(runtime, buffers, [0, 1], root=3)


class TestAllgather:
    def test_concatenates_in_rank_order(self, runtime):
        ranks = [0, 1, 2, 3]
        buffers = {rank: np.full((1, 3), rank, dtype=np.float32) for rank in ranks}
        out = allgather(runtime, buffers, ranks, axis=0)
        expected = np.array([[0, 0, 0], [1, 1, 1], [2, 2, 2], [3, 3, 3]], dtype=np.float32)
        for rank in ranks:
            np.testing.assert_array_equal(out[rank], expected)

    def test_axis_one(self, runtime):
        ranks = [0, 1]
        buffers = {rank: np.full((2, 2), rank, dtype=np.float32) for rank in ranks}
        out = allgather(runtime, buffers, ranks, axis=1)
        assert out[0].shape == (2, 4)


class TestAllreduce:
    def test_sum_received_everywhere(self, runtime):
        ranks = [0, 1, 2, 3]
        buffers = per_rank_buffers((3, 2), ranks, lambda r: float(r + 1))
        out = allreduce(runtime, buffers, ranks)
        for rank in ranks:
            assert np.all(out[rank] == 10.0)

    def test_subgroup(self, runtime):
        ranks = [0, 2]
        buffers = per_rank_buffers((2, 2), ranks, lambda r: 1.0)
        out = allreduce(runtime, buffers, ranks)
        assert np.all(out[2] == 2.0)


class TestReduceScatter:
    def test_chunks_sum_and_scatter(self, runtime):
        ranks = [0, 1, 2, 3]
        buffers = per_rank_buffers((4, 2), ranks, lambda r: 1.0)
        out = reduce_scatter(runtime, buffers, ranks, axis=0)
        for position, rank in enumerate(ranks):
            assert out[rank].shape == (1, 2)
            assert np.all(out[rank] == 4.0)

    def test_concatenation_recovers_full_reduction(self, runtime):
        ranks = [0, 1]
        buffers = {0: np.arange(8, dtype=np.float32).reshape(4, 2),
                   1: np.ones((4, 2), dtype=np.float32)}
        out = reduce_scatter(runtime, buffers, ranks, axis=0)
        full = np.concatenate([out[0], out[1]], axis=0)
        np.testing.assert_array_equal(full, buffers[0] + buffers[1])
