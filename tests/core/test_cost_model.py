"""Unit tests for the roofline/bandwidth cost model."""

import pytest

from repro.core.cost_model import CostModel, GemmShapeModel
from repro.core.ops import LocalMatmulOp, OperandRef
from repro.topology.machines import h100_system, pvc_system, uniform_system
from repro.util.indexing import Interval, Rect


@pytest.fixture
def pvc_model():
    return CostModel(pvc_system(12))


def make_op(rank, a_owner, b_owner, c_owner, m, k, n):
    mb, kb, nb = Interval(0, m), Interval(0, k), Interval(0, n)
    return LocalMatmulOp(
        rank=rank,
        a=OperandRef((0, 0), 0, a_owner, Rect(mb, kb)),
        b=OperandRef((0, 0), 0, b_owner, Rect(kb, nb)),
        c=OperandRef((0, 0), 0, c_owner, Rect(mb, nb)),
        m_bound=mb, k_bound=kb, n_bound=nb,
        stationary_index=(0, 0),
    )


class TestGemmShapeModel:
    def test_large_dims_near_one(self):
        model = GemmShapeModel()
        assert model.efficiency(8192, 8192, 8192) > 0.95

    def test_small_dims_penalised(self):
        model = GemmShapeModel()
        assert model.efficiency(16, 8192, 8192) < 0.35

    def test_monotone_in_each_dim(self):
        model = GemmShapeModel()
        assert model.efficiency(128, 1024, 1024) < model.efficiency(1024, 1024, 1024)

    def test_degenerate_dims_return_one(self):
        assert GemmShapeModel().efficiency(0, 10, 10) == 1.0


class TestGemmTime:
    def test_scales_with_flops(self, pvc_model):
        small = pvc_model.gemm_time(1024, 1024, 1024)
        large = pvc_model.gemm_time(2048, 2048, 2048)
        assert large > 4 * small  # 8x flops, some overhead amortised

    def test_zero_dims_free(self, pvc_model):
        assert pvc_model.gemm_time(0, 10, 10) == 0.0

    def test_never_exceeds_peak(self, pvc_model):
        m = n = k = 8192
        time = pvc_model.gemm_time(m, n, k)
        flops = 2.0 * m * n * k
        assert flops / time <= pvc_model.machine.flops_peak

    def test_includes_launch_overhead(self, pvc_model):
        assert pvc_model.gemm_time(1, 1, 1) >= pvc_model.machine.kernel_launch_overhead

    def test_h100_faster_than_pvc(self):
        pvc = CostModel(pvc_system(12)).gemm_time(4096, 4096, 4096)
        h100 = CostModel(h100_system(8)).gemm_time(4096, 4096, 4096)
        assert h100 < pvc


class TestCommunicationTimes:
    def test_local_transfer_is_free(self, pvc_model):
        assert pvc_model.transfer_time(3, 3, 1 << 20) == 0.0

    def test_remote_transfer_positive(self, pvc_model):
        assert pvc_model.transfer_time(0, 5, 1 << 20) > 0.0

    def test_accumulate_slower_than_copy(self, pvc_model):
        copy = pvc_model.transfer_time(0, 5, 1 << 24)
        accumulate = pvc_model.accumulate_time(0, 5, 1 << 24)
        assert accumulate > copy
        # The paper's kernel reaches ~80% of copy bandwidth.
        assert accumulate == pytest.approx(copy / 0.8, rel=0.05)

    def test_local_accumulate_memory_bound(self, pvc_model):
        nbytes = 1 << 24
        expected = 3 * nbytes / pvc_model.machine.memory_bandwidth
        assert pvc_model.local_accumulate_time(nbytes) == pytest.approx(
            expected + pvc_model.machine.kernel_launch_overhead
        )

    def test_zero_bytes_free(self, pvc_model):
        assert pvc_model.accumulate_time(0, 1, 0) == 0.0


class TestOpLevel:
    def test_fetch_time_counts_only_remote_operands(self, pvc_model):
        local = make_op(0, 0, 0, 0, 128, 128, 128)
        remote_b = make_op(0, 0, 5, 0, 128, 128, 128)
        assert pvc_model.op_fetch_time(local) == 0.0
        assert pvc_model.op_fetch_time(remote_b) > 0.0

    def test_accumulate_time_local_vs_remote(self, pvc_model):
        local = make_op(0, 0, 0, 0, 128, 128, 128)
        remote = make_op(0, 0, 0, 5, 128, 128, 128)
        assert pvc_model.op_accumulate_time(remote) > pvc_model.op_accumulate_time(local)

    def test_estimate_op_list_lower_bounded_by_compute(self, pvc_model):
        ops = [make_op(0, 0, 1, 0, 512, 512, 512) for _ in range(4)]
        estimate = pvc_model.estimate_op_list(ops)
        compute = sum(pvc_model.op_compute_time(op) for op in ops)
        assert estimate >= compute

    def test_estimate_empty(self, pvc_model):
        assert pvc_model.estimate_op_list([]) == 0.0
        assert pvc_model.estimate_op_lists({}) == 0.0

    def test_estimate_op_lists_takes_slowest_rank(self, pvc_model):
        light = [make_op(0, 0, 1, 0, 64, 64, 64)]
        heavy = [make_op(1, 1, 0, 1, 2048, 2048, 2048)]
        combined = pvc_model.estimate_op_lists({0: light, 1: heavy})
        assert combined == pvc_model.estimate_op_list(heavy)


class TestPercentOfPeak:
    def test_zero_time(self, pvc_model):
        assert pvc_model.percent_of_peak(1.0e12, 0.0) == 0.0

    def test_at_peak_is_100(self, pvc_model):
        machine = pvc_model.machine
        flops = machine.total_peak() * 2.0  # two seconds of full-machine work
        assert pvc_model.percent_of_peak(flops, 2.0) == pytest.approx(100.0)

    def test_uniform_machine(self):
        model = CostModel(uniform_system(4, flops_peak=1.0e12))
        assert model.percent_of_peak(2.0e12, 1.0) == pytest.approx(50.0)
