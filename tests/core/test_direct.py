"""Unit tests for the direct execution engine's behaviour and optimisations."""

import numpy as np
import pytest

from repro.core.config import ExecutionConfig
from repro.core.cost_model import CostModel
from repro.core.direct import DirectExecutor
from repro.core.matmul import universal_matmul
from repro.core.slicing import apply_iteration_offset, generate_all_ops
from repro.core.stationary import Stationary
from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import Block2D, ColumnBlock, RowBlock
from repro.runtime.runtime import Runtime
from repro.topology.machines import pvc_system, uniform_system


def build_problem(num_ranks=4, m=32, n=28, k=24, parts=None, materialize=True,
                  machine=None):
    runtime = Runtime(machine=machine or uniform_system(num_ranks))
    parts = parts or (Block2D(), Block2D(), Block2D())
    rng = np.random.default_rng(0)
    if materialize:
        a = DistributedMatrix.from_dense(runtime, rng.standard_normal((m, k)), parts[0],
                                         name="A")
        b = DistributedMatrix.from_dense(runtime, rng.standard_normal((k, n)), parts[1],
                                         name="B")
        c = DistributedMatrix.create(runtime, (m, n), parts[2], dtype=np.float64, name="C")
    else:
        a = DistributedMatrix.create(runtime, (m, k), parts[0], name="A", materialize=False)
        b = DistributedMatrix.create(runtime, (k, n), parts[1], name="B", materialize=False)
        c = DistributedMatrix.create(runtime, (m, n), parts[2], name="C", materialize=False)
    return runtime, a, b, c


class TestExecutorBasics:
    def test_execute_returns_stats_for_every_rank(self):
        runtime, a, b, c = build_problem()
        ops = generate_all_ops(a, b, c, Stationary.C)
        executor = DirectExecutor(a, b, c, CostModel(runtime.machine), ExecutionConfig())
        makespan, stats = executor.execute(ops)
        assert makespan > 0.0
        assert set(stats) == set(range(4))
        assert all(stats[r].num_ops == len(ops[r]) for r in range(4))

    def test_engine_busy_times_populated(self):
        runtime, a, b, c = build_problem(parts=(RowBlock(), RowBlock(), RowBlock()))
        ops = generate_all_ops(a, b, c, Stationary.C)
        executor = DirectExecutor(a, b, c, CostModel(runtime.machine), ExecutionConfig())
        _, stats = executor.execute(ops)
        assert any(s.copy_time > 0 for s in stats.values())
        assert all(s.compute_time > 0 for s in stats.values() if s.num_ops)

    def test_makespan_at_least_slowest_rank_compute(self):
        runtime, a, b, c = build_problem()
        ops = generate_all_ops(a, b, c, Stationary.C)
        cost_model = CostModel(runtime.machine)
        executor = DirectExecutor(a, b, c, cost_model, ExecutionConfig())
        makespan, stats = executor.execute(ops)
        assert makespan >= max(s.compute_time for s in stats.values())

    def test_empty_op_lists(self):
        runtime, a, b, c = build_problem()
        executor = DirectExecutor(a, b, c, CostModel(runtime.machine), ExecutionConfig())
        makespan, stats = executor.execute({r: [] for r in range(4)})
        assert makespan == 0.0
        assert all(s.num_ops == 0 for s in stats.values())


class TestOptimisationEffects:
    def test_tile_cache_avoids_duplicate_fetches(self):
        parts = (RowBlock(), ColumnBlock(), ColumnBlock())
        runtime, a, b, c = build_problem(parts=parts)
        ops = generate_all_ops(a, b, c, Stationary.C)
        cost_model = CostModel(runtime.machine)

        cached = DirectExecutor(a, b, c, cost_model, ExecutionConfig(cache_remote_tiles=True))
        _, cached_stats = cached.execute(ops)
        c.zero()
        uncached = DirectExecutor(a, b, c, cost_model,
                                  ExecutionConfig(cache_remote_tiles=False))
        _, uncached_stats = uncached.execute(ops)
        assert sum(s.remote_get_bytes for s in cached_stats.values()) <= \
            sum(s.remote_get_bytes for s in uncached_stats.values())

    def test_memory_pool_reuses_buffers(self):
        runtime, a, b, c = build_problem(parts=(RowBlock(), RowBlock(), RowBlock()))
        ops = generate_all_ops(a, b, c, Stationary.C)
        executor = DirectExecutor(a, b, c, CostModel(runtime.machine),
                                  ExecutionConfig(use_memory_pool=True,
                                                  cache_remote_tiles=False))
        executor.execute(ops)
        reuses = sum(runtime.pool(r).stats.reuses for r in range(4))
        assert reuses > 0

    def test_async_overlap_not_slower_than_synchronous(self):
        machine = pvc_system(12)
        runtime, a, b, c = build_problem(num_ranks=12, m=240, n=240, k=240,
                                         parts=(RowBlock(), RowBlock(), RowBlock()),
                                         materialize=False, machine=machine)
        ops = generate_all_ops(a, b, c, Stationary.C)
        cost_model = CostModel(machine)
        fast = DirectExecutor(a, b, c, cost_model,
                              ExecutionConfig(simulate_only=True))
        slow = DirectExecutor(a, b, c, cost_model,
                              ExecutionConfig.synchronous().evolve(simulate_only=True))
        fast_time, _ = fast.execute(ops)
        slow_time, _ = slow.execute(ops)
        assert fast_time <= slow_time + 1e-12

    def test_iteration_offset_helps_under_contention(self):
        """Everyone fetching the same owner's tile first serialises on that link;
        the offset staggers the accesses (paper §4.2, first optimisation)."""
        machine = uniform_system(8)
        runtime, a, b, c = build_problem(num_ranks=8, m=64, n=64, k=512,
                                         parts=(ColumnBlock(), ColumnBlock(), ColumnBlock()),
                                         materialize=False, machine=machine)
        cost_model = CostModel(machine)
        raw_ops = generate_all_ops(a, b, c, Stationary.C)
        offset_ops = {r: apply_iteration_offset(ops) for r, ops in raw_ops.items()}
        config = ExecutionConfig(simulate_only=True)
        with_offset, _ = DirectExecutor(a, b, c, cost_model, config).execute(offset_ops)
        without_offset, _ = DirectExecutor(a, b, c, cost_model, config).execute(raw_ops)
        assert with_offset <= without_offset + 1e-12

    def test_h100_accumulate_interference_charged(self):
        """On H100 the accumulate kernel steals compute time (paper §5.2.1)."""
        from repro.topology.machines import h100_system

        machine = h100_system(8)
        runtime, a, b, c = build_problem(num_ranks=8, m=64, n=64, k=64,
                                         parts=(ColumnBlock(), RowBlock(), Block2D()),
                                         materialize=False, machine=machine)
        ops = generate_all_ops(a, b, c, Stationary.B)
        cost_model = CostModel(machine)
        executor = DirectExecutor(a, b, c, cost_model, ExecutionConfig(simulate_only=True))
        _, stats = executor.execute(ops)
        # Compute busy time must exceed the pure GEMM+local-accumulate time on
        # ranks that issued remote accumulates, because interference is added.
        for rank, rank_stats in stats.items():
            pure = sum(cost_model.op_compute_time(op) for op in ops[rank])
            if rank_stats.remote_accumulate_bytes > 0:
                assert rank_stats.compute_time > pure


class TestPrefetchDepths:
    @pytest.mark.parametrize("depth", [0, 1, 2, 4])
    def test_all_depths_correct(self, depth):
        runtime, a, b, c = build_problem(parts=(ColumnBlock(), ColumnBlock(), ColumnBlock()))
        config = ExecutionConfig(prefetch_depth=depth)
        result = universal_matmul(a, b, c, stationary="C", config=config)
        np.testing.assert_allclose(c.to_dense(), a.to_dense() @ b.to_dense(), rtol=1e-9)
        assert result.total_ops > 0

    def test_deeper_prefetch_not_slower(self):
        machine = pvc_system(12)
        times = {}
        for depth in (0, 2):
            runtime, a, b, c = build_problem(num_ranks=12, m=240, n=240, k=240,
                                             parts=(RowBlock(), RowBlock(), RowBlock()),
                                             materialize=False, machine=machine)
            ops = generate_all_ops(a, b, c, Stationary.C)
            config = ExecutionConfig(simulate_only=True, prefetch_depth=depth)
            times[depth], _ = DirectExecutor(a, b, c, CostModel(machine), config).execute(ops)
        assert times[2] <= times[0] + 1e-12
