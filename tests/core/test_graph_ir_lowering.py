"""Unit tests for the computation graph, the IR, and the lowering strategies."""

import pytest

from repro.core.config import ExecutionConfig, LoweringStrategy
from repro.core.cost_model import CostModel
from repro.core.graph import ComputationGraph
from repro.core.ir import IRCommOp, IRComputeOp, IRProgram, IRStep
from repro.core.lowering import lower_all_ranks, lower_to_ir
from repro.core.schedule_sim import estimate_program_time
from repro.core.slicing import generate_all_ops, generate_local_ops
from repro.core.stationary import Stationary
from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import Block2D, ColumnBlock, RowBlock
from repro.runtime.runtime import Runtime
from repro.topology.machines import uniform_system


@pytest.fixture
def runtime():
    return Runtime(machine=uniform_system(4))


@pytest.fixture
def problem(runtime):
    a = DistributedMatrix.create(runtime, (32, 24), RowBlock(), name="A", materialize=False)
    b = DistributedMatrix.create(runtime, (24, 28), ColumnBlock(), name="B", materialize=False)
    c = DistributedMatrix.create(runtime, (32, 28), Block2D(), name="C", materialize=False)
    return a, b, c


@pytest.fixture
def cost_model(runtime):
    return CostModel(runtime.machine)


class TestComputationGraph:
    def test_build_records_all_dependencies(self, problem):
        a, b, c = problem
        ops = generate_local_ops(a, b, c, Stationary.C, 0)
        graph = ComputationGraph.build(0, ops)
        assert graph.num_ops == len(ops)
        for index in range(graph.num_ops):
            deps = graph.dependencies[index]
            assert len(deps) == 2  # one A tile, one B tile
            names = {key[0] for key in deps}
            assert names == {"A", "B"}

    def test_local_tiles_start_satisfied(self, problem):
        a, b, c = problem
        ops = generate_local_ops(a, b, c, Stationary.C, 0)
        graph = ComputationGraph.build(0, ops)
        for key in graph.initially_satisfied:
            assert graph.data_nodes[key].owner == 0

    def test_remote_data_keys_disjoint_from_satisfied(self, problem):
        a, b, c = problem
        ops = generate_local_ops(a, b, c, Stationary.C, 1)
        graph = ComputationGraph.build(1, ops)
        assert set(graph.remote_data_keys()).isdisjoint(graph.initially_satisfied)

    def test_ops_depending_on(self, problem):
        a, b, c = problem
        ops = generate_local_ops(a, b, c, Stationary.C, 0)
        graph = ComputationGraph.build(0, ops)
        for key in graph.data_nodes:
            dependents = graph.ops_depending_on(key)
            assert all(key in graph.dependencies[index] for index in dependents)

    def test_total_remote_bytes_positive_for_distributed_problem(self, problem):
        a, b, c = problem
        ops = generate_local_ops(a, b, c, Stationary.C, 2)
        graph = ComputationGraph.build(2, ops)
        assert graph.total_remote_bytes() > 0

    def test_is_ready(self, problem):
        a, b, c = problem
        ops = generate_local_ops(a, b, c, Stationary.C, 0)
        graph = ComputationGraph.build(0, ops)
        all_keys = set(graph.data_nodes)
        for index in range(graph.num_ops):
            assert graph.is_ready(index, all_keys)
            assert graph.unsatisfied_deps(index, all_keys) == []


class TestIRProgram:
    def test_validate_accepts_complete_program(self):
        program = IRProgram(rank=0, steps=[
            IRStep(computes=[IRComputeOp(0)]),
            IRStep(computes=[IRComputeOp(1), IRComputeOp(2)]),
        ])
        program.validate(3)

    def test_validate_rejects_missing_op(self):
        program = IRProgram(rank=0, steps=[IRStep(computes=[IRComputeOp(0)])])
        with pytest.raises(ValueError):
            program.validate(2)

    def test_validate_rejects_duplicate_comm(self):
        comm = IRCommOp(("A", 0, (0, 0)), owner=1, nbytes=64)
        program = IRProgram(rank=0, steps=[IRStep(comms=[comm]), IRStep(comms=[comm])])
        with pytest.raises(ValueError):
            program.validate(0)

    def test_empty_step_detection(self):
        assert IRStep().is_empty
        assert not IRStep(computes=[IRComputeOp(0)]).is_empty


@pytest.mark.parametrize("strategy", [LoweringStrategy.GREEDY,
                                      LoweringStrategy.COST_GREEDY,
                                      LoweringStrategy.EXHAUSTIVE])
class TestLoweringStrategies:
    def test_program_schedules_every_op_once(self, problem, cost_model, strategy):
        a, b, c = problem
        config = ExecutionConfig(lowering=strategy, exhaustive_search_limit=200)
        for rank in range(4):
            ops = generate_local_ops(a, b, c, Stationary.C, rank)
            graph = ComputationGraph.build(rank, ops)
            program = lower_to_ir(graph, cost_model, config)
            program.validate(len(ops))

    def test_comms_precede_dependent_computes(self, problem, cost_model, strategy):
        a, b, c = problem
        config = ExecutionConfig(lowering=strategy, exhaustive_search_limit=200)
        rank = 3
        ops = generate_local_ops(a, b, c, Stationary.C, rank)
        graph = ComputationGraph.build(rank, ops)
        program = lower_to_ir(graph, cost_model, config)

        satisfied = set(graph.initially_satisfied)
        in_flight = set()
        for step in program.steps:
            satisfied |= in_flight
            for compute in step.computes:
                assert graph.dependencies[compute.op_index] <= satisfied, (
                    "a compute ran before its data dependency was satisfied"
                )
            in_flight = {comm.data for comm in step.comms}

    def test_every_remote_dependency_fetched(self, problem, cost_model, strategy):
        a, b, c = problem
        config = ExecutionConfig(lowering=strategy, exhaustive_search_limit=200)
        rank = 2
        ops = generate_local_ops(a, b, c, Stationary.C, rank)
        graph = ComputationGraph.build(rank, ops)
        program = lower_to_ir(graph, cost_model, config)
        fetched = set(program.comm_keys())
        assert set(graph.remote_data_keys()) <= fetched | graph.initially_satisfied


class TestLoweringQuality:
    def test_cost_greedy_not_worse_than_greedy(self, problem, cost_model):
        a, b, c = problem
        rank = 1
        ops = generate_local_ops(a, b, c, Stationary.C, rank)
        graph = ComputationGraph.build(rank, ops)
        greedy = lower_to_ir(graph, cost_model, ExecutionConfig(),
                             strategy=LoweringStrategy.GREEDY)
        cost_greedy = lower_to_ir(graph, cost_model, ExecutionConfig(),
                                  strategy=LoweringStrategy.COST_GREEDY)
        assert estimate_program_time(cost_greedy, graph, cost_model) <= \
            estimate_program_time(greedy, graph, cost_model) * 1.25

    def test_exhaustive_at_least_as_good_as_greedy(self, runtime, cost_model):
        a = DistributedMatrix.create(runtime, (16, 12), RowBlock(), name="A",
                                     materialize=False)
        b = DistributedMatrix.create(runtime, (12, 16), RowBlock(), name="B",
                                     materialize=False)
        c = DistributedMatrix.create(runtime, (16, 16), RowBlock(), name="C",
                                     materialize=False)
        rank = 0
        ops = generate_local_ops(a, b, c, Stationary.C, rank)
        assert 1 < len(ops) <= 6  # small enough to search exhaustively
        graph = ComputationGraph.build(rank, ops)
        config = ExecutionConfig(exhaustive_search_limit=10000)
        greedy = lower_to_ir(graph, cost_model, config, strategy=LoweringStrategy.GREEDY)
        exhaustive = lower_to_ir(graph, cost_model, config,
                                 strategy=LoweringStrategy.EXHAUSTIVE)
        assert estimate_program_time(exhaustive, graph, cost_model) <= \
            estimate_program_time(greedy, graph, cost_model) + 1e-12

    def test_exhaustive_falls_back_when_too_large(self, problem, cost_model):
        a, b, c = problem
        rank = 0
        ops = generate_local_ops(a, b, c, Stationary.C, rank)
        graph = ComputationGraph.build(rank, ops)
        config = ExecutionConfig(exhaustive_search_limit=1)
        program = lower_to_ir(graph, cost_model, config,
                              strategy=LoweringStrategy.EXHAUSTIVE)
        program.validate(len(ops))  # falls back to cost-greedy but stays valid

    def test_lower_all_ranks(self, problem, cost_model):
        a, b, c = problem
        per_rank_ops = generate_all_ops(a, b, c, Stationary.C)
        programs = lower_all_ranks(per_rank_ops, cost_model)
        assert set(programs) == set(range(4))
        for rank, program in programs.items():
            program.validate(len(per_rank_ops[rank]))

    def test_empty_op_list(self, cost_model):
        graph = ComputationGraph.build(0, [])
        program = lower_to_ir(graph, cost_model, ExecutionConfig())
        assert program.steps == []
        assert estimate_program_time(program, graph, cost_model) == 0.0
