"""End-to-end correctness tests for the universal matmul across the partitioning space.

Every test multiplies real data through the PGAS runtime and compares the
gathered result against ``A @ B`` computed by NumPy — the same check the
paper's correctness claims rest on, exercised over aligned, misaligned, and
replicated distributions, all three data-movement strategies, and both the
direct and IR execution paths.
"""

import numpy as np
import pytest

from repro.core.config import ExecutionConfig, ExecutionMode, LoweringStrategy
from repro.core.matmul import plan_ops, universal_matmul
from repro.core.stationary import Stationary
from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import (
    Block2D,
    BlockCyclic,
    ColumnBlock,
    CustomTiles,
    RowBlock,
)
from repro.runtime.runtime import Runtime
from repro.topology.machines import uniform_system
from repro.util.validation import ShapeError


def run_case(num_ranks, m, n, k, part_a, part_b, part_c, rep=(1, 1, 1),
             stationary=None, config=None, seed=0, dtype=np.float64):
    """Distribute random operands, multiply, and check against NumPy."""
    runtime = Runtime(machine=uniform_system(num_ranks))
    rng = np.random.default_rng(seed)
    a_dense = rng.standard_normal((m, k)).astype(dtype)
    b_dense = rng.standard_normal((k, n)).astype(dtype)
    a = DistributedMatrix.from_dense(runtime, a_dense, part_a, replication=rep[0], name="A")
    b = DistributedMatrix.from_dense(runtime, b_dense, part_b, replication=rep[1], name="B")
    c = DistributedMatrix.create(runtime, (m, n), part_c, replication=rep[2],
                                 dtype=dtype, name="C")
    config = config or ExecutionConfig(validate_ops=True)
    result = universal_matmul(a, b, c, stationary=stationary, config=config)
    tolerance = 1e-9 if np.dtype(dtype).itemsize >= 8 else 1e-3
    np.testing.assert_allclose(c.to_dense(0), a_dense @ b_dense,
                               rtol=tolerance, atol=tolerance)
    return result, runtime


ALL_1D_2D = [
    (RowBlock(), RowBlock(), RowBlock()),
    (ColumnBlock(), ColumnBlock(), ColumnBlock()),
    (Block2D(), Block2D(), Block2D()),
    (RowBlock(), ColumnBlock(), Block2D()),
    (ColumnBlock(), RowBlock(), Block2D()),
    (RowBlock(), ColumnBlock(), ColumnBlock()),
    (Block2D(), RowBlock(), ColumnBlock()),
]


class TestAllPartitionCombinations:
    @pytest.mark.parametrize("parts", ALL_1D_2D)
    def test_correct_for_partitioning(self, parts):
        result, _ = run_case(4, 30, 26, 22, *parts)
        assert result.total_ops > 0

    @pytest.mark.parametrize("stationary", list(Stationary))
    @pytest.mark.parametrize("parts", [
        (ColumnBlock(), RowBlock(), Block2D()),
        (Block2D(), Block2D(), Block2D()),
    ])
    def test_correct_for_every_stationary_strategy(self, parts, stationary):
        result, _ = run_case(6, 36, 30, 24, *parts, stationary=stationary)
        assert result.stationary is stationary

    def test_block_cyclic_partitioning(self):
        parts = (BlockCyclic((5, 5)), BlockCyclic((5, 7)), BlockCyclic((7, 7)))
        run_case(4, 20, 21, 15, *parts)

    def test_misaligned_custom_tiles(self):
        parts = (
            CustomTiles([0, 13, 29, 50], [0, 10, 37]),
            CustomTiles([0, 20, 37], [0, 7, 30, 41]),
            CustomTiles([0, 25, 50], [0, 11, 41]),
        )
        run_case(4, 50, 41, 37, *parts)

    def test_single_rank_degenerate(self):
        run_case(1, 12, 10, 8, RowBlock(), RowBlock(), RowBlock())

    def test_rectangular_very_tall(self):
        run_case(4, 96, 8, 8, RowBlock(), Block2D(), RowBlock())

    def test_rectangular_very_wide(self):
        run_case(4, 8, 96, 8, ColumnBlock(), ColumnBlock(), ColumnBlock())


class TestReplicationCombinations:
    @pytest.mark.parametrize("rep", [(2, 1, 1), (1, 2, 1), (1, 1, 2), (2, 2, 2),
                                     (4, 1, 1), (1, 1, 4), (2, 4, 1), (4, 2, 2)])
    def test_replication_factors(self, rep):
        run_case(4, 28, 24, 20, Block2D(), Block2D(), Block2D(), rep=rep)

    def test_full_replication_of_everything(self):
        result, runtime = run_case(4, 16, 16, 16, RowBlock(), RowBlock(), RowBlock(),
                                   rep=(4, 4, 4))
        # Everything local: no remote gets should have been needed.
        assert result.remote_get_bytes == 0

    def test_mixed_replication_with_uneven_groups(self):
        run_case(6, 30, 24, 18, ColumnBlock(), RowBlock(), Block2D(), rep=(2, 3, 1))

    def test_replicated_c_reduce_time_reported(self):
        result, _ = run_case(4, 24, 24, 24, ColumnBlock(), RowBlock(), Block2D(),
                             rep=(1, 1, 2), stationary="B")
        assert result.reduce_time > 0.0

    def test_unreplicated_c_has_no_reduce_time(self):
        result, _ = run_case(4, 24, 24, 24, Block2D(), Block2D(), Block2D())
        assert result.reduce_time == 0.0


class TestExecutionModes:
    def test_ir_greedy_matches_reference(self):
        config = ExecutionConfig(mode=ExecutionMode.IR, lowering=LoweringStrategy.GREEDY)
        run_case(4, 30, 26, 22, Block2D(), Block2D(), Block2D(), config=config)

    def test_ir_cost_greedy_matches_reference(self):
        config = ExecutionConfig(mode=ExecutionMode.IR,
                                 lowering=LoweringStrategy.COST_GREEDY)
        run_case(4, 30, 26, 22, ColumnBlock(), RowBlock(), Block2D(), config=config)

    def test_ir_exhaustive_matches_reference(self):
        config = ExecutionConfig(mode=ExecutionMode.IR,
                                 lowering=LoweringStrategy.EXHAUSTIVE,
                                 exhaustive_search_limit=5000)
        run_case(4, 16, 16, 16, Block2D(), Block2D(), Block2D(), config=config)

    def test_synchronous_config_matches_reference(self):
        config = ExecutionConfig.synchronous()
        run_case(4, 30, 26, 22, Block2D(), Block2D(), Block2D(), config=config)

    def test_no_memory_pool(self):
        config = ExecutionConfig(use_memory_pool=False)
        run_case(4, 24, 24, 24, RowBlock(), ColumnBlock(), Block2D(), config=config)

    def test_no_tile_cache(self):
        config = ExecutionConfig(cache_remote_tiles=False)
        run_case(4, 24, 24, 24, RowBlock(), RowBlock(), RowBlock(), config=config)

    def test_deep_prefetch(self):
        config = ExecutionConfig(prefetch_depth=8)
        run_case(4, 24, 24, 24, ColumnBlock(), ColumnBlock(), ColumnBlock(), config=config)

    def test_float32_accumulation(self):
        run_case(4, 20, 20, 20, Block2D(), Block2D(), Block2D(), dtype=np.float32)


class TestResultMetadata:
    def test_flops_match_problem(self):
        result, _ = run_case(4, 30, 26, 22, Block2D(), Block2D(), Block2D())
        assert result.total_flops == 2 * 30 * 26 * 22

    def test_percent_of_peak_in_range(self):
        result, _ = run_case(4, 30, 26, 22, Block2D(), Block2D(), Block2D())
        assert 0.0 < result.percent_of_peak <= 100.0

    def test_simulated_time_positive_and_composed(self):
        result, _ = run_case(4, 30, 26, 22, Block2D(), Block2D(), Block2D())
        assert result.simulated_time == pytest.approx(
            result.compute_makespan + result.reduce_time
        )

    def test_per_rank_stats_cover_all_ranks(self):
        result, _ = run_case(4, 30, 26, 22, Block2D(), Block2D(), Block2D())
        assert set(result.per_rank) == {0, 1, 2, 3}
        assert sum(s.flops for s in result.per_rank.values()) == result.total_flops

    def test_metadata_records_partitions_and_replication(self):
        result, _ = run_case(4, 30, 26, 22, RowBlock(), ColumnBlock(), Block2D(),
                             rep=(2, 1, 1))
        assert result.metadata["partitions"] == {"A": "row", "B": "column", "C": "block"}
        assert result.metadata["replication"] == {"A": 2, "B": 1, "C": 1}

    def test_summary_is_flat_dict(self):
        result, _ = run_case(4, 20, 20, 20, Block2D(), Block2D(), Block2D())
        summary = result.summary()
        assert summary["stationary"] in ("A", "B", "C")
        assert isinstance(summary["percent_of_peak"], float)

    def test_traffic_counter_agrees_with_result(self):
        result, runtime = run_case(4, 30, 26, 22, ColumnBlock(), ColumnBlock(),
                                   ColumnBlock(), stationary="C")
        assert runtime.traffic.total_bytes("get", remote_only=True) == result.remote_get_bytes


class TestCommunicationShape:
    """Communication-volume properties the paper's analysis relies on."""

    def test_column_scheme_moves_only_a(self):
        result, runtime = run_case(4, 32, 32, 32, ColumnBlock(), ColumnBlock(),
                                   ColumnBlock(), stationary="C")
        # B and C tiles are co-located per rank, so the only remote traffic is A:
        # each of the 4 ranks fetches the 3 A column tiles it does not own.
        a_tile_bytes = 32 * 8 * 8
        assert result.remote_accumulate_bytes == 0
        assert result.remote_get_bytes == 4 * 3 * a_tile_bytes

    def test_outer_product_only_accumulates_c(self):
        result, _ = run_case(4, 32, 32, 32, ColumnBlock(), RowBlock(), Block2D(),
                             stationary="B")
        assert result.remote_get_bytes == 0
        assert result.remote_accumulate_bytes > 0

    def test_replication_reduces_remote_gets(self):
        base, _ = run_case(4, 32, 32, 32, RowBlock(), RowBlock(), RowBlock(),
                           stationary="C")
        replicated, _ = run_case(4, 32, 32, 32, RowBlock(), RowBlock(), RowBlock(),
                                 rep=(1, 2, 1), stationary="C")
        assert replicated.remote_get_bytes < base.remote_get_bytes


class TestErrorHandling:
    def test_shape_mismatch_rejected(self):
        runtime = Runtime(machine=uniform_system(4))
        a = DistributedMatrix.create(runtime, (10, 6), Block2D(), name="A")
        b = DistributedMatrix.create(runtime, (7, 12), Block2D(), name="B")
        c = DistributedMatrix.create(runtime, (10, 12), Block2D(), name="C")
        with pytest.raises(ShapeError):
            universal_matmul(a, b, c)

    def test_different_runtimes_rejected(self):
        rt1 = Runtime(machine=uniform_system(4))
        rt2 = Runtime(machine=uniform_system(4))
        a = DistributedMatrix.create(rt1, (8, 8), Block2D(), name="A")
        b = DistributedMatrix.create(rt2, (8, 8), Block2D(), name="B")
        c = DistributedMatrix.create(rt1, (8, 8), Block2D(), name="C")
        with pytest.raises(ShapeError):
            universal_matmul(a, b, c)

    def test_accumulates_into_existing_c(self):
        runtime = Runtime(machine=uniform_system(4))
        rng = np.random.default_rng(5)
        a_dense = rng.standard_normal((16, 12))
        b_dense = rng.standard_normal((12, 14))
        a = DistributedMatrix.from_dense(runtime, a_dense, Block2D(), name="A")
        b = DistributedMatrix.from_dense(runtime, b_dense, Block2D(), name="B")
        c = DistributedMatrix.create(runtime, (16, 14), Block2D(), dtype=np.float64, name="C")
        c.fill(1.0)
        universal_matmul(a, b, c)
        np.testing.assert_allclose(c.to_dense(), a_dense @ b_dense + 1.0, rtol=1e-9)


class TestPlanOps:
    def test_plan_without_execution(self):
        runtime = Runtime(machine=uniform_system(4))
        a = DistributedMatrix.create(runtime, (64, 64), Block2D(), name="A",
                                     materialize=False)
        b = DistributedMatrix.create(runtime, (64, 64), Block2D(), name="B",
                                     materialize=False)
        c = DistributedMatrix.create(runtime, (64, 64), Block2D(), name="C",
                                     materialize=False)
        plan = plan_ops(a, b, c)
        assert set(plan) == {0, 1, 2, 3}
        assert all(ops for ops in plan.values())

    def test_simulate_only_matches_materialized_timing(self):
        """The modelled time must not depend on whether data actually moves."""
        def build(materialize):
            runtime = Runtime(machine=uniform_system(4))
            a = DistributedMatrix.create(runtime, (64, 48), RowBlock(), name="A",
                                         materialize=materialize)
            b = DistributedMatrix.create(runtime, (48, 56), ColumnBlock(), name="B",
                                         materialize=materialize)
            c = DistributedMatrix.create(runtime, (64, 56), Block2D(), name="C",
                                         materialize=materialize)
            config = ExecutionConfig(simulate_only=not materialize)
            return universal_matmul(a, b, c, stationary="C", config=config)

        real = build(True)
        symbolic = build(False)
        assert symbolic.simulated_time == pytest.approx(real.simulated_time, rel=1e-9)
        assert symbolic.remote_get_bytes == real.remote_get_bytes
