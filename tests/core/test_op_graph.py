"""Unit tests for the workload-level op graph (GraphOp/GraphEdge/OpGraph)."""

import pytest

from repro.core.graph import (
    GraphEdge,
    GraphOp,
    OpGraph,
    attention_chain,
    matmul_chain,
    mlp_chain,
)


def chain3():
    return matmul_chain("c", (GraphOp("x", 8, 4, 6),
                              GraphOp("y", 8, 10, 4),
                              GraphOp("z", 8, 2, 10)))


class TestGraphOp:
    def test_shapes(self):
        op = GraphOp("op", m=8, n=4, k=6)
        assert op.output_shape == (8, 4)
        assert op.operand_shape("A") == (8, 6)
        assert op.operand_shape("B") == (6, 4)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            GraphOp("bad", m=0, n=4, k=6)

    def test_rejects_unknown_operand(self):
        with pytest.raises(ValueError):
            GraphOp("op", 8, 4, 6).operand_shape("C")

    def test_round_trip(self):
        op = GraphOp("op", m=8, n=4, k=6)
        assert GraphOp.from_dict(op.to_dict()) == op


class TestOpGraphValidation:
    def test_chain_builder_links_outputs_to_a(self):
        graph = chain3()
        assert graph.is_chain
        assert [e.operand for e in graph.edges] == ["A", "A"]
        assert graph.topological_order() == [0, 1, 2]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="produces"):
            OpGraph(name="bad",
                    ops=(GraphOp("x", 8, 4, 6), GraphOp("y", 9, 10, 4)),
                    edges=(GraphEdge(src=0, dst=1, operand="A"),))

    def test_cycle_rejected(self):
        ops = (GraphOp("x", 8, 8, 8), GraphOp("y", 8, 8, 8))
        edges = (GraphEdge(0, 1, "A"), GraphEdge(1, 0, "A"))
        with pytest.raises(ValueError, match="cycle"):
            OpGraph(name="loop", ops=ops, edges=edges)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            OpGraph(name="self", ops=(GraphOp("x", 8, 8, 8),),
                    edges=(GraphEdge(0, 0, "A"),))

    def test_duplicate_operand_slot_rejected(self):
        ops = (GraphOp("x", 8, 8, 8), GraphOp("y", 8, 8, 8),
               GraphOp("z", 8, 8, 8))
        edges = (GraphEdge(0, 2, "A"), GraphEdge(1, 2, "A"))
        with pytest.raises(ValueError, match="operand"):
            OpGraph(name="dup", ops=ops, edges=edges)

    def test_dag_with_fanout_is_not_a_chain(self):
        ops = (GraphOp("p", 8, 8, 8), GraphOp("q", 8, 8, 8),
               GraphOp("r", 8, 4, 8))
        edges = (GraphEdge(0, 1, "A"), GraphEdge(0, 2, "A"))
        graph = OpGraph(name="fan", ops=ops, edges=edges)
        assert not graph.is_chain
        assert graph.topological_order() == [0, 1, 2]
        assert [e.dst for e in graph.successors(0)] == [1, 2]
        assert [e.src for e in graph.predecessors(1)] == [0]

    def test_round_trip(self):
        graph = chain3()
        assert OpGraph.from_dict(graph.to_dict()) == graph


class TestChainBuilders:
    def test_mlp_chain_shapes(self):
        graph = mlp_chain(32, 16, ratio=4)
        assert graph.is_chain
        op1, op2 = graph.ops
        assert (op1.m, op1.n, op1.k) == (32, 64, 16)
        assert (op2.m, op2.n, op2.k) == (32, 16, 64)
        assert op1.output_shape == op2.operand_shape("A")

    def test_attention_chain_shapes(self):
        graph = attention_chain(64, 16, 48)
        assert graph.is_chain
        qkv, score, value = graph.ops
        assert qkv.output_shape == score.operand_shape("A")
        assert score.output_shape == value.operand_shape("A")
        assert value.output_shape == (64, 16)
