"""Unit tests for LocalMatmulOp and ExecutionConfig."""

import pytest

from repro.core.config import ExecutionConfig, ExecutionMode, LoweringStrategy
from repro.core.ops import LocalMatmulOp, OperandRef
from repro.util.indexing import Interval, Rect


def make_op(rank=0, a_owner=0, b_owner=1, c_owner=0, m=(0, 4), k=(0, 6), n=(0, 8),
            itemsize=4):
    m_bound, k_bound, n_bound = Interval(*m), Interval(*k), Interval(*n)
    return LocalMatmulOp(
        rank=rank,
        a=OperandRef((0, 0), 0, a_owner, Rect(m_bound, k_bound)),
        b=OperandRef((0, 0), 0, b_owner, Rect(k_bound, n_bound)),
        c=OperandRef((0, 0), 0, c_owner, Rect(m_bound, n_bound)),
        m_bound=m_bound, k_bound=k_bound, n_bound=n_bound,
        stationary_index=(0, 0),
        itemsize=itemsize,
    )


class TestLocalMatmulOp:
    def test_dimensions(self):
        op = make_op(m=(2, 6), k=(0, 3), n=(1, 9))
        assert (op.m, op.k, op.n) == (4, 3, 8)

    def test_flops(self):
        op = make_op(m=(0, 4), k=(0, 6), n=(0, 8))
        assert op.flops == 2 * 4 * 6 * 8

    def test_byte_counts(self):
        op = make_op(m=(0, 4), k=(0, 6), n=(0, 8), itemsize=4)
        assert op.a_bytes == 4 * 6 * 4
        assert op.b_bytes == 6 * 8 * 4
        assert op.c_bytes == 4 * 8 * 4

    def test_remote_flags(self):
        op = make_op(rank=0, a_owner=0, b_owner=1, c_owner=2)
        assert not op.a_is_remote
        assert op.b_is_remote
        assert op.c_is_remote

    def test_remote_fetch_bytes_only_counts_remote(self):
        op = make_op(rank=0, a_owner=0, b_owner=1)
        assert op.remote_fetch_bytes == op.b_bytes

    def test_remote_accumulate_bytes(self):
        local = make_op(rank=0, c_owner=0)
        remote = make_op(rank=0, c_owner=3)
        assert local.remote_accumulate_bytes == 0
        assert remote.remote_accumulate_bytes == remote.c_bytes

    def test_empty_op(self):
        op = make_op(k=(3, 3))
        assert op.is_empty
        assert op.flops == 0

    def test_describe_mentions_all_operands(self):
        text = make_op().describe()
        assert "A(0, 0)" in text and "B(0, 0)" in text and "C(0, 0)" in text

    def test_operand_ref_full_tile_detection(self):
        ref = OperandRef((0, 0), 0, 0, Rect.from_bounds(0, 4, 0, 4))
        offset = OperandRef((0, 0), 0, 0, Rect.from_bounds(1, 4, 0, 4))
        assert ref.is_full_tile
        assert not offset.is_full_tile


class TestExecutionConfig:
    def test_defaults_match_paper(self):
        config = ExecutionConfig()
        assert config.mode is ExecutionMode.DIRECT
        assert config.prefetch_depth == 2
        assert config.iteration_offset is True
        assert config.async_execution is True
        assert config.use_memory_pool is True

    def test_synchronous_preset_disables_overlap(self):
        config = ExecutionConfig.synchronous()
        assert config.prefetch_depth == 0
        assert not config.async_execution
        assert not config.iteration_offset
        assert config.max_concurrent_gemms == 1

    def test_evolve(self):
        config = ExecutionConfig().evolve(prefetch_depth=5)
        assert config.prefetch_depth == 5
        assert config.mode is ExecutionMode.DIRECT

    def test_invalid_prefetch(self):
        with pytest.raises(ValueError):
            ExecutionConfig(prefetch_depth=-1)

    def test_invalid_concurrency(self):
        with pytest.raises(ValueError):
            ExecutionConfig(max_concurrent_gemms=0)
        with pytest.raises(ValueError):
            ExecutionConfig(max_concurrent_accumulates=0)

    def test_invalid_search_limit(self):
        with pytest.raises(ValueError):
            ExecutionConfig(exhaustive_search_limit=0)

    def test_mode_and_lowering_enums(self):
        config = ExecutionConfig(mode=ExecutionMode.IR,
                                 lowering=LoweringStrategy.EXHAUSTIVE)
        assert config.mode.value == "ir"
        assert config.lowering.value == "exhaustive"
