"""Unit tests for IR execution and program time estimation."""

import numpy as np
import pytest

from repro.core.config import ExecutionConfig, LoweringStrategy
from repro.core.cost_model import CostModel
from repro.core.graph import ComputationGraph
from repro.core.ir import IRProgram, IRStep, IRComputeOp
from repro.core.lowering import lower_all_ranks
from repro.core.schedule_sim import IRExecutor, estimate_program_time
from repro.core.slicing import generate_all_ops, generate_local_ops
from repro.core.stationary import Stationary
from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import Block2D, ColumnBlock, RowBlock
from repro.runtime.runtime import Runtime
from repro.topology.machines import uniform_system
from repro.util.validation import SchedulingError


def build_problem(materialize=True):
    runtime = Runtime(machine=uniform_system(4))
    rng = np.random.default_rng(2)
    m, n, k = 28, 26, 20
    if materialize:
        a = DistributedMatrix.from_dense(runtime, rng.standard_normal((m, k)), RowBlock(),
                                         name="A")
        b = DistributedMatrix.from_dense(runtime, rng.standard_normal((k, n)), ColumnBlock(),
                                         name="B")
        c = DistributedMatrix.create(runtime, (m, n), Block2D(), dtype=np.float64, name="C")
    else:
        a = DistributedMatrix.create(runtime, (m, k), RowBlock(), name="A", materialize=False)
        b = DistributedMatrix.create(runtime, (k, n), ColumnBlock(), name="B",
                                     materialize=False)
        c = DistributedMatrix.create(runtime, (m, n), Block2D(), name="C", materialize=False)
    return runtime, a, b, c


class TestEstimateProgramTime:
    def test_steps_overlap_comm_and_compute(self):
        runtime, a, b, c = build_problem(materialize=False)
        cost_model = CostModel(runtime.machine)
        ops = generate_local_ops(a, b, c, Stationary.C, 1)
        graph = ComputationGraph.build(1, ops)
        programs = lower_all_ranks({1: ops}, cost_model)
        estimate = estimate_program_time(programs[1], graph, cost_model)
        serial = sum(cost_model.op_compute_time(op) + cost_model.op_fetch_time(op)
                     + cost_model.op_accumulate_time(op) for op in ops)
        assert 0.0 < estimate <= serial + 1e-12

    def test_empty_program(self):
        runtime, a, b, c = build_problem(materialize=False)
        cost_model = CostModel(runtime.machine)
        graph = ComputationGraph.build(0, [])
        assert estimate_program_time(IRProgram(rank=0), graph, cost_model) == 0.0


class TestIRExecutor:
    def test_result_matches_numpy(self):
        runtime, a, b, c = build_problem()
        cost_model = CostModel(runtime.machine)
        per_rank_ops = generate_all_ops(a, b, c, Stationary.C)
        programs = lower_all_ranks(per_rank_ops, cost_model)
        executor = IRExecutor(a, b, c, cost_model, ExecutionConfig())
        makespan, stats = executor.execute(per_rank_ops, programs)
        np.testing.assert_allclose(c.to_dense(), a.to_dense() @ b.to_dense(), rtol=1e-9)
        assert makespan > 0.0
        assert sum(s.flops for s in stats.values()) == 2 * 28 * 26 * 20

    def test_simulate_only_mode_touches_no_data(self):
        runtime, a, b, c = build_problem(materialize=False)
        cost_model = CostModel(runtime.machine)
        per_rank_ops = generate_all_ops(a, b, c, Stationary.C)
        programs = lower_all_ranks(per_rank_ops, cost_model)
        executor = IRExecutor(a, b, c, cost_model, ExecutionConfig(simulate_only=True))
        makespan, stats = executor.execute(per_rank_ops, programs)
        assert makespan > 0.0
        assert sum(s.remote_get_bytes for s in stats.values()) > 0

    def test_invalid_program_rejected(self):
        runtime, a, b, c = build_problem()
        cost_model = CostModel(runtime.machine)
        per_rank_ops = generate_all_ops(a, b, c, Stationary.C)
        bad = {rank: IRProgram(rank=rank) for rank in range(4)}  # schedules nothing
        executor = IRExecutor(a, b, c, cost_model, ExecutionConfig())
        with pytest.raises(ValueError):
            executor.execute(per_rank_ops, bad)

    def test_missing_fetch_detected(self):
        runtime, a, b, c = build_problem()
        cost_model = CostModel(runtime.machine)
        per_rank_ops = generate_all_ops(a, b, c, Stationary.C)
        # Build programs that compute everything but never fetch anything.
        programs = {
            rank: IRProgram(rank=rank, steps=[
                IRStep(computes=[IRComputeOp(i) for i in range(len(ops))])
            ])
            for rank, ops in per_rank_ops.items()
        }
        executor = IRExecutor(a, b, c, cost_model, ExecutionConfig())
        with pytest.raises(SchedulingError):
            executor.execute(per_rank_ops, programs)

    @pytest.mark.parametrize("strategy", [LoweringStrategy.GREEDY,
                                          LoweringStrategy.COST_GREEDY])
    def test_all_lowerings_execute_correctly(self, strategy):
        runtime, a, b, c = build_problem()
        cost_model = CostModel(runtime.machine)
        per_rank_ops = generate_all_ops(a, b, c, Stationary.B)
        programs = lower_all_ranks(per_rank_ops, cost_model,
                                   ExecutionConfig(), strategy)
        executor = IRExecutor(a, b, c, cost_model, ExecutionConfig())
        executor.execute(per_rank_ops, programs)
        np.testing.assert_allclose(c.to_dense(), a.to_dense() @ b.to_dense(), rtol=1e-9)
