"""Unit tests for op generation by slicing (paper Algorithms 1-2 + Stationary A)."""

import numpy as np
import pytest

from repro.core.slicing import (
    apply_iteration_offset,
    check_coverage,
    generate_all_ops,
    generate_local_ops,
)
from repro.core.stationary import Stationary
from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import Block2D, ColumnBlock, CustomTiles, RowBlock
from repro.runtime.runtime import Runtime
from repro.topology.machines import uniform_system
from repro.util.validation import ShapeError


@pytest.fixture
def runtime():
    return Runtime(machine=uniform_system(4))


def make_triplet(runtime, m=24, n=20, k=16, parts=(Block2D(), Block2D(), Block2D()),
                 reps=(1, 1, 1)):
    a = DistributedMatrix.create(runtime, (m, k), parts[0], replication=reps[0], name="A")
    b = DistributedMatrix.create(runtime, (k, n), parts[1], replication=reps[1], name="B")
    c = DistributedMatrix.create(runtime, (m, n), parts[2], replication=reps[2], name="C")
    return a, b, c


class TestStationaryCOps:
    def test_every_op_touches_an_owned_c_tile(self, runtime):
        a, b, c = make_triplet(runtime)
        for rank in range(4):
            for op in generate_local_ops(a, b, c, Stationary.C, rank):
                assert op.c.owner == rank
                assert op.stationary_index == op.c.index

    def test_coverage_exact(self, runtime):
        a, b, c = make_triplet(runtime)
        check_coverage(a, b, c, generate_all_ops(a, b, c, Stationary.C))

    def test_bounds_consistent_with_tiles(self, runtime):
        a, b, c = make_triplet(runtime)
        for rank in range(4):
            for op in generate_local_ops(a, b, c, Stationary.C, rank):
                assert a.tile_bounds(op.a.index).rows.contains_interval(op.m_bound)
                assert a.tile_bounds(op.a.index).cols.contains_interval(op.k_bound)
                assert b.tile_bounds(op.b.index).rows.contains_interval(op.k_bound)
                assert b.tile_bounds(op.b.index).cols.contains_interval(op.n_bound)
                assert c.tile_bounds(op.c.index).rows.contains_interval(op.m_bound)
                assert c.tile_bounds(op.c.index).cols.contains_interval(op.n_bound)

    def test_local_rects_within_tiles(self, runtime):
        a, b, c = make_triplet(runtime, parts=(RowBlock(), ColumnBlock(), Block2D()))
        for rank in range(4):
            for op in generate_local_ops(a, b, c, Stationary.C, rank):
                for matrix, operand in ((a, op.a), (b, op.b), (c, op.c)):
                    tile_shape = matrix.tile_bounds(operand.index).shape
                    assert operand.local.rows.stop <= tile_shape[0]
                    assert operand.local.cols.stop <= tile_shape[1]
                    assert operand.local.rows.start >= 0
                    assert operand.local.cols.start >= 0


class TestStationaryBOps:
    def test_every_op_touches_an_owned_b_tile(self, runtime):
        a, b, c = make_triplet(runtime)
        for rank in range(4):
            for op in generate_local_ops(a, b, c, Stationary.B, rank):
                assert op.b.owner == rank
                assert op.stationary_index == op.b.index

    def test_coverage_exact(self, runtime):
        a, b, c = make_triplet(runtime, parts=(ColumnBlock(), RowBlock(), Block2D()))
        check_coverage(a, b, c, generate_all_ops(a, b, c, Stationary.B))


class TestStationaryAOps:
    def test_every_op_touches_an_owned_a_tile(self, runtime):
        a, b, c = make_triplet(runtime)
        for rank in range(4):
            for op in generate_local_ops(a, b, c, Stationary.A, rank):
                assert op.a.owner == rank
                assert op.stationary_index == op.a.index

    def test_coverage_exact(self, runtime):
        a, b, c = make_triplet(runtime, parts=(Block2D(), RowBlock(), ColumnBlock()))
        check_coverage(a, b, c, generate_all_ops(a, b, c, Stationary.A))


class TestMisalignedTiles:
    """The paper's Figure 1 scenario: operand tiles need not line up."""

    def _triplet(self, runtime):
        a_part = CustomTiles([0, 7, 15, 24], [0, 5, 16])
        b_part = CustomTiles([0, 9, 16], [0, 8, 13, 20])
        c_part = CustomTiles([0, 12, 24], [0, 11, 20])
        return make_triplet(runtime, parts=(a_part, b_part, c_part))

    @pytest.mark.parametrize("stationary", list(Stationary))
    def test_coverage_with_misaligned_tiles(self, runtime, stationary):
        a, b, c = self._triplet(runtime)
        check_coverage(a, b, c, generate_all_ops(a, b, c, stationary))

    def test_slices_are_subtile(self, runtime):
        a, b, c = self._triplet(runtime)
        ops = [op for rank in range(4) for op in generate_local_ops(a, b, c, Stationary.C, rank)]
        # With misaligned tiles at least one op must use a strict sub-rectangle.
        assert any(not op.a.is_full_tile or not op.b.is_full_tile for op in ops)


class TestReplication:
    def test_replicated_stationary_splits_inner_dimension(self, runtime):
        a, b, c = make_triplet(runtime, reps=(1, 1, 2))
        ops = generate_all_ops(a, b, c, Stationary.C)
        check_coverage(a, b, c, ops)
        # Ranks in replica 0 only touch the first half of k, replica 1 the second.
        k = a.shape[1]
        for rank, rank_ops in ops.items():
            replica = c.replica_of_rank(rank)
            lo, hi = c.replication.work_share(replica, k)
            for op in rank_ops:
                assert lo <= op.k_bound.start and op.k_bound.stop <= hi

    def test_replicated_b_splits_m(self, runtime):
        a, b, c = make_triplet(runtime, reps=(1, 2, 1))
        ops = generate_all_ops(a, b, c, Stationary.B)
        check_coverage(a, b, c, ops)

    def test_replicated_a_splits_n(self, runtime):
        a, b, c = make_triplet(runtime, reps=(2, 1, 1))
        ops = generate_all_ops(a, b, c, Stationary.A)
        check_coverage(a, b, c, ops)

    def test_replicated_inputs_read_locally(self, runtime):
        """Full replication of A means no rank ever reads A remotely."""
        a, b, c = make_triplet(runtime, reps=(4, 1, 1))
        ops = generate_all_ops(a, b, c, Stationary.C)
        for rank_ops in ops.values():
            for op in rank_ops:
                assert not op.a_is_remote

    def test_non_stationary_replication_does_not_duplicate_work(self, runtime):
        a, b, c = make_triplet(runtime, reps=(2, 2, 1))
        check_coverage(a, b, c, generate_all_ops(a, b, c, Stationary.C))


class TestIterationOffset:
    def test_preserves_multiset_of_ops(self, runtime):
        a, b, c = make_triplet(runtime, parts=(RowBlock(), RowBlock(), RowBlock()))
        ops = generate_local_ops(a, b, c, Stationary.C, 1)
        rotated = apply_iteration_offset(ops)
        assert sorted(map(id, ops)) == sorted(map(id, rotated))

    def test_rotates_by_tile_index_sum(self, runtime):
        a, b, c = make_triplet(runtime, parts=(RowBlock(), RowBlock(), RowBlock()))
        # Rank 1's stationary C tile is (1, 0): offset = 1.
        ops = generate_local_ops(a, b, c, Stationary.C, 1)
        rotated = apply_iteration_offset(ops)
        assert rotated[0] is ops[1 % len(ops)]

    def test_zero_offset_for_origin_tile(self, runtime):
        a, b, c = make_triplet(runtime, parts=(RowBlock(), RowBlock(), RowBlock()))
        ops = generate_local_ops(a, b, c, Stationary.C, 0)
        rotated = apply_iteration_offset(ops)
        assert rotated[0] is ops[0]

    def test_empty_list(self):
        assert apply_iteration_offset([]) == []

    def test_groups_stay_contiguous(self, runtime):
        """Ops from different stationary tiles must not interleave."""
        a, b, c = make_triplet(runtime, parts=(Block2D(), Block2D(),
                                               CustomTiles([0, 6, 12, 18, 24], [0, 10, 20])))
        ops = generate_local_ops(a, b, c, Stationary.C, 0)
        rotated = apply_iteration_offset(ops)
        seen_groups = []
        for op in rotated:
            if not seen_groups or seen_groups[-1] != op.stationary_index:
                seen_groups.append(op.stationary_index)
        assert len(seen_groups) == len(set(seen_groups))


class TestCheckCoverage:
    def test_detects_missing_ops(self, runtime):
        a, b, c = make_triplet(runtime)
        ops = generate_all_ops(a, b, c, Stationary.C)
        ops[0] = ops[0][:-1]  # drop one op
        with pytest.raises(ShapeError):
            check_coverage(a, b, c, ops)

    def test_detects_duplicated_ops(self, runtime):
        a, b, c = make_triplet(runtime)
        ops = generate_all_ops(a, b, c, Stationary.C)
        ops[0] = ops[0] + [ops[0][0]]
        with pytest.raises(ShapeError):
            check_coverage(a, b, c, ops)

    def test_shape_mismatch_rejected(self, runtime):
        a = DistributedMatrix.create(runtime, (8, 6), Block2D(), name="A")
        b = DistributedMatrix.create(runtime, (7, 10), Block2D(), name="B")
        c = DistributedMatrix.create(runtime, (8, 10), Block2D(), name="C")
        with pytest.raises(ShapeError):
            generate_all_ops(a, b, c, Stationary.C)
