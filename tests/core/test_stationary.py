"""Unit tests for data-movement strategy selection."""

import pytest

from repro.core.cost_model import CostModel
from repro.core.stationary import (
    Stationary,
    choose_stationary_by_cost,
    choose_stationary_by_size,
    estimate_all_strategies,
    parse_stationary,
)
from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import Block2D, ColumnBlock, RowBlock
from repro.runtime.runtime import Runtime
from repro.topology.machines import uniform_system


@pytest.fixture
def runtime():
    return Runtime(machine=uniform_system(4))


def triplet(runtime, m, n, k):
    a = DistributedMatrix.create(runtime, (m, k), Block2D(), name="A", materialize=False)
    b = DistributedMatrix.create(runtime, (k, n), Block2D(), name="B", materialize=False)
    c = DistributedMatrix.create(runtime, (m, n), Block2D(), name="C", materialize=False)
    return a, b, c


class TestParseStationary:
    @pytest.mark.parametrize("value,expected", [
        ("A", Stationary.A), ("b", Stationary.B), ("C", Stationary.C),
        ("stationary_c", Stationary.C), ("Stationary-B", Stationary.B),
        (Stationary.A, Stationary.A),
    ])
    def test_accepted_spellings(self, value, expected):
        assert parse_stationary(value) is expected

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_stationary("D")
        with pytest.raises(ValueError):
            parse_stationary(42)


class TestSizeHeuristic:
    def test_largest_matrix_chosen_c(self, runtime):
        # m=n large, k small -> C is biggest.
        a, b, c = triplet(runtime, 512, 512, 32)
        assert choose_stationary_by_size(a, b, c) is Stationary.C

    def test_largest_matrix_chosen_b(self, runtime):
        # B = k x n is biggest.
        a, b, c = triplet(runtime, 32, 512, 512)
        assert choose_stationary_by_size(a, b, c) is Stationary.B

    def test_largest_matrix_chosen_a(self, runtime):
        a, b, c = triplet(runtime, 512, 32, 512)
        assert choose_stationary_by_size(a, b, c) is Stationary.A

    def test_tie_prefers_c(self, runtime):
        a, b, c = triplet(runtime, 128, 128, 128)
        assert choose_stationary_by_size(a, b, c) is Stationary.C


class TestCostBasedSelection:
    def test_estimates_cover_all_strategies(self, runtime):
        a, b, c = triplet(runtime, 96, 96, 96)
        model = CostModel(runtime.machine)
        estimates = estimate_all_strategies(a, b, c, model)
        assert set(estimates) == set(Stationary)
        assert all(value > 0 for value in estimates.values())

    def test_choice_is_argmin_of_estimates(self, runtime):
        a, b, c = triplet(runtime, 96, 192, 48)
        model = CostModel(runtime.machine)
        estimates = estimate_all_strategies(a, b, c, model)
        assert choose_stationary_by_cost(a, b, c, model) == min(estimates, key=estimates.get)

    def test_cost_model_prefers_avoiding_large_matrix_movement(self, runtime):
        """With an enormous B and small A/C the cost model must not move B."""
        a = DistributedMatrix.create(runtime, (64, 2048), ColumnBlock(), name="A",
                                     materialize=False)
        b = DistributedMatrix.create(runtime, (2048, 2048), RowBlock(), name="B",
                                     materialize=False)
        c = DistributedMatrix.create(runtime, (64, 2048), ColumnBlock(), name="C",
                                     materialize=False)
        model = CostModel(runtime.machine)
        estimates = estimate_all_strategies(a, b, c, model)
        assert estimates[Stationary.B] <= estimates[Stationary.A]
