"""Direct unit tests for DistributedMatrix ownership, tile access, and collectives."""

import numpy as np
import pytest

from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import Block2D, ColumnBlock, RowBlock
from repro.runtime.runtime import Runtime
from repro.topology.machines import uniform_system
from repro.util.indexing import Interval, Rect
from repro.util.validation import CommunicationError, PartitionError


@pytest.fixture
def runtime():
    return Runtime(machine=uniform_system(4))


class TestOwnership:
    def test_my_tiles_partition_the_grid_within_a_replica(self, runtime):
        matrix = DistributedMatrix.create(runtime, (24, 24), Block2D(), name="M")
        seen = []
        for rank in range(4):
            tiles = matrix.my_tiles(rank)
            for idx in tiles:
                assert matrix.owner_rank(idx, matrix.replica_of_rank(rank)) == rank
            seen.extend(tiles)
        assert sorted(seen) == sorted(matrix.tiles())

    def test_replicated_owners_disjoint_across_groups(self, runtime):
        matrix = DistributedMatrix.create(runtime, (16, 16), RowBlock(),
                                          replication=2, name="M")
        owners_0 = {matrix.owner_rank(idx, 0) for idx in matrix.tiles()}
        owners_1 = {matrix.owner_rank(idx, 1) for idx in matrix.tiles()}
        assert owners_0 == {0, 1}
        assert owners_1 == {2, 3}

    def test_grid_shape_reflects_per_replica_owners(self, runtime):
        matrix = DistributedMatrix.create(runtime, (16, 16), RowBlock(),
                                          replication=2, name="M")
        # Two ranks per replica -> two row panels, not four.
        assert matrix.grid_shape() == (2, 1)


class TestTileAccess:
    def test_tile_view_aliases_storage(self, runtime):
        matrix = DistributedMatrix.create(runtime, (8, 8), RowBlock(),
                                          dtype=np.float64, name="M")
        view = matrix.tile((0, 0))
        view[:] = 7.0
        assert matrix.to_dense()[0, 0] == 7.0

    def test_tile_rejects_non_owner(self, runtime):
        matrix = DistributedMatrix.create(runtime, (8, 8), RowBlock(), name="M")
        owner = matrix.owner_rank((0, 0), 0)
        with pytest.raises(CommunicationError):
            matrix.tile((0, 0), 0, rank=(owner + 1) % 4)

    def test_get_tile_is_a_copy(self, runtime):
        matrix = DistributedMatrix.create(runtime, (8, 8), RowBlock(),
                                          dtype=np.float64, name="M")
        matrix.fill(3.0)
        copy = matrix.get_tile((1, 0), initiator=0)
        copy[:] = 0.0
        assert matrix.to_dense()[2, 0] == 3.0

    def test_accumulate_tile_region(self, runtime):
        matrix = DistributedMatrix.create(runtime, (8, 8), RowBlock(),
                                          dtype=np.float64, name="M")
        update = np.ones((1, 2))
        region = Rect(Interval(1, 2), Interval(3, 5))
        matrix.accumulate_tile((0, 0), update, initiator=2, region=region)
        dense = matrix.to_dense()
        assert dense[1, 3] == 1.0 and dense[1, 4] == 1.0
        assert dense.sum() == 2.0

    def test_unmaterialized_access_raises(self, runtime):
        matrix = DistributedMatrix.create(runtime, (8, 8), RowBlock(), name="M",
                                          materialize=False)
        with pytest.raises(CommunicationError):
            matrix.tile((0, 0))
        with pytest.raises(CommunicationError):
            matrix.to_dense()

    def test_freed_access_names_free_not_materialize(self, runtime):
        matrix = DistributedMatrix.create(runtime, (8, 8), RowBlock(), name="M")
        matrix.free()
        with pytest.raises(CommunicationError, match="free"):
            matrix.get_tile((0, 0), initiator=0)

    def test_bad_tile_index_raises(self, runtime):
        matrix = DistributedMatrix.create(runtime, (8, 8), RowBlock(), name="M")
        with pytest.raises(PartitionError):
            matrix.tile_bounds((9, 0))
        with pytest.raises(PartitionError):
            matrix.owner_rank((-1, 0), 0)
        with pytest.raises(PartitionError):
            matrix.get_tile((0, 5), initiator=0)


class TestReplicaCollectives:
    def test_broadcast_replica_copies_origin(self, runtime):
        matrix = DistributedMatrix.create(runtime, (8, 8), RowBlock(),
                                          replication=2, dtype=np.float64, name="M")
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((8, 8))
        # Write to replica 0 only, then broadcast.
        for idx in matrix.tiles():
            view = matrix.tile(idx, 0)
            np.copyto(view, dense[matrix.tile_bounds(idx).as_slices()])
        matrix.broadcast_replica(0)
        np.testing.assert_array_equal(matrix.to_dense(1), dense)

    def test_reduce_replicas_sums_into_origin(self, runtime):
        matrix = DistributedMatrix.create(runtime, (8, 8), RowBlock(),
                                          replication=4, dtype=np.float64, name="M")
        for replica in range(4):
            for idx in matrix.tiles():
                matrix.tile(idx, replica).fill(float(replica + 1))
        matrix.reduce_replicas(0)
        np.testing.assert_array_equal(matrix.to_dense(0),
                                      np.full((8, 8), 1.0 + 2.0 + 3.0 + 4.0))
        # Non-origin replicas keep their partial values.
        np.testing.assert_array_equal(matrix.to_dense(1), np.full((8, 8), 2.0))

    def test_load_dense_fills_every_replica(self, runtime):
        matrix = DistributedMatrix.create(runtime, (8, 8), ColumnBlock(),
                                          replication=2, dtype=np.float64, name="M")
        dense = np.arange(64, dtype=np.float64).reshape(8, 8)
        matrix.load_dense(dense)
        for replica in range(2):
            np.testing.assert_array_equal(matrix.to_dense(replica), dense)
