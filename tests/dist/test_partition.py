"""Direct unit tests for partition strategies' grids and owner maps."""

import numpy as np
import pytest

from repro.dist.partition import (
    Block2D,
    BlockCyclic,
    ColumnBlock,
    CustomTiles,
    RowBlock,
)
from repro.dist.process_grid import ProcessGrid, near_square_factors
from repro.util.validation import PartitionError


class TestNearSquareFactors:
    @pytest.mark.parametrize("count,expected", [
        (1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (6, (2, 3)),
        (7, (1, 7)), (12, (3, 4)), (16, (4, 4)), (18, (3, 6)),
    ])
    def test_known_factorings(self, count, expected):
        assert near_square_factors(count) == expected

    def test_rows_never_exceed_cols(self):
        for count in range(1, 200):
            rows, cols = near_square_factors(count)
            assert rows * cols == count
            assert rows <= cols


class TestProcessGrid:
    def test_row_major_roundtrip(self):
        grid = ProcessGrid(3, 4)
        positions = [grid.position_of(i, j) for (i, j) in grid]
        assert positions == list(range(12))
        for position in range(12):
            assert grid.position_of(*grid.coords_of(position)) == position


class TestRowAndColumnBlock:
    def test_row_block_one_panel_per_owner(self):
        grid, owners = RowBlock().build((32, 16), 4)
        assert grid.shape == (4, 1)
        assert grid.row_splits == (0, 8, 16, 24, 32)
        assert grid.col_splits == (0, 16)
        np.testing.assert_array_equal(owners[:, 0], [0, 1, 2, 3])

    def test_column_block_one_panel_per_owner(self):
        grid, owners = ColumnBlock().build((10, 20), 5)
        assert grid.shape == (1, 5)
        np.testing.assert_array_equal(owners[0, :], [0, 1, 2, 3, 4])

    def test_uneven_extent_front_loads_remainder(self):
        grid, _ = RowBlock().build((10, 4), 4)
        assert grid.row_splits == (0, 3, 6, 8, 10)

    def test_more_owners_than_rows_clamps_tiles(self):
        grid, owners = RowBlock().build((3, 8), 5)
        assert grid.shape == (3, 1)
        assert set(int(o) for o in owners.ravel()) == {0, 1, 2}

    def test_explicit_block_count(self):
        grid, owners = RowBlock(num_blocks=8).build((32, 4), 4)
        assert grid.shape == (8, 1)
        # Round-robin wraps the extra panels back onto the owners.
        np.testing.assert_array_equal(owners[:, 0], [0, 1, 2, 3, 0, 1, 2, 3])

    def test_invalid_block_count_rejected(self):
        with pytest.raises(ValueError):
            RowBlock(num_blocks=0).build((32, 4), 4)
        with pytest.raises(ValueError):
            ColumnBlock(num_blocks=-2).build((4, 32), 4)


class TestBlock2D:
    def test_near_square_grid_row_major_owners(self):
        grid, owners = Block2D().build((1536, 1536), 6)
        assert grid.shape == (2, 3)
        np.testing.assert_array_equal(owners, [[0, 1, 2], [3, 4, 5]])

    def test_explicit_grid(self):
        grid, owners = Block2D(grid_rows=4, grid_cols=1).build((16, 16), 4)
        assert grid.shape == (4, 1)
        np.testing.assert_array_equal(owners[:, 0], [0, 1, 2, 3])

    def test_mismatched_explicit_grid_rejected(self):
        with pytest.raises(PartitionError):
            Block2D(grid_rows=3, grid_cols=2).build((16, 16), 4)

    def test_partial_grid_spec_infers_other_axis(self):
        grid, _ = Block2D(grid_rows=2).build((16, 16), 6)
        assert grid.shape == (2, 3)
        with pytest.raises(PartitionError):
            Block2D(grid_rows=5).build((16, 16), 6)


class TestBlockCyclic:
    def test_tile_boundaries_fixed_size(self):
        grid, _ = BlockCyclic((5, 7)).build((12, 21), 4)
        assert grid.row_splits == (0, 5, 10, 12)
        assert grid.col_splits == (0, 7, 14, 21)

    def test_mismatched_explicit_grid_rejected(self):
        with pytest.raises(PartitionError):
            BlockCyclic((4, 4), grid=(2, 2)).build((16, 16), 3)

    def test_cyclic_owner_assignment(self):
        grid, owners = BlockCyclic((4, 4)).build((16, 16), 4)
        assert grid.shape == (4, 4)
        # 2x2 process grid dealt cyclically: owners repeat with period 2.
        np.testing.assert_array_equal(owners[:2, :2], owners[2:, 2:])
        assert set(int(o) for o in owners.ravel()) == {0, 1, 2, 3}


class TestCustomTiles:
    def test_round_robin_owners(self):
        grid, owners = CustomTiles([0, 13, 29, 50], [0, 10, 37]).build((50, 37), 4)
        assert grid.shape == (3, 2)
        np.testing.assert_array_equal(owners, [[0, 1], [2, 3], [0, 1]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PartitionError):
            CustomTiles([0, 10], [0, 10]).build((10, 12), 2)

    def test_invalid_splits_rejected(self):
        with pytest.raises(PartitionError):
            CustomTiles([0, 5, 5, 10], [0, 10]).build((10, 10), 2)
        with pytest.raises(PartitionError):
            CustomTiles([1, 10], [0, 10]).build((10, 10), 2)


class TestNames:
    def test_metadata_names(self):
        assert RowBlock().name == "row"
        assert ColumnBlock().name == "column"
        assert Block2D().name == "block"
        assert BlockCyclic().name == "block_cyclic"
        assert CustomTiles([0, 1], [0, 1]).name == "custom"
