"""Direct unit tests for layout conversion (redistribute round-trips + pricing)."""

import numpy as np
import pytest

from repro.dist import redistribute, redistribution_cost
from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import Block2D, ColumnBlock, CustomTiles, RowBlock
from repro.runtime.runtime import Runtime
from repro.topology.machines import uniform_system


@pytest.fixture
def runtime():
    return Runtime(machine=uniform_system(4))


def make_matrix(runtime, partition, shape=(24, 20), replication=1, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal(shape)
    matrix = DistributedMatrix.from_dense(runtime, dense, partition,
                                          replication=replication, name="M")
    return matrix, dense


class TestRoundTrips:
    @pytest.mark.parametrize("first,second", [
        (RowBlock(), ColumnBlock()),
        (ColumnBlock(), Block2D()),
        (Block2D(), CustomTiles([0, 7, 24], [0, 5, 11, 20])),
    ])
    def test_there_and_back_preserves_data(self, runtime, first, second):
        matrix, dense = make_matrix(runtime, first)
        there = redistribute(matrix, second)
        back = redistribute(there, first)
        np.testing.assert_array_equal(there.to_dense(), dense)
        np.testing.assert_array_equal(back.to_dense(), dense)

    def test_source_untouched(self, runtime):
        matrix, dense = make_matrix(runtime, RowBlock())
        redistribute(matrix, ColumnBlock())
        np.testing.assert_array_equal(matrix.to_dense(), dense)

    def test_dtype_shape_and_runtime_preserved(self, runtime):
        matrix, _ = make_matrix(runtime, RowBlock())
        out = redistribute(matrix, Block2D())
        assert out.runtime is runtime
        assert out.shape == matrix.shape
        assert out.dtype == matrix.dtype
        assert out.partition.name == "block"


class TestReplicationChanges:
    def test_replicate_up_fills_every_replica(self, runtime):
        matrix, dense = make_matrix(runtime, RowBlock())
        replicated = redistribute(matrix, ColumnBlock(), replication=2)
        assert replicated.replication.factor == 2
        for replica in range(2):
            np.testing.assert_array_equal(replicated.to_dense(replica), dense)

    def test_dereplicate_down(self, runtime):
        matrix, dense = make_matrix(runtime, RowBlock(), replication=2)
        single = redistribute(matrix, RowBlock(), replication=1)
        assert single.replication.factor == 1
        np.testing.assert_array_equal(single.to_dense(), dense)


class TestAccounting:
    def test_cross_rank_moves_recorded_as_gets(self, runtime):
        matrix, _ = make_matrix(runtime, RowBlock())
        before = runtime.traffic.total_bytes("get", remote_only=True)
        redistribute(matrix, ColumnBlock())
        moved = runtime.traffic.total_bytes("get", remote_only=True) - before
        # Row -> column panels: each destination rank keeps exactly its
        # diagonal intersection local, so 3/4 of the matrix moves.
        assert moved == 3 * 6 * 20 * 8

    def test_identity_reshard_moves_nothing_remote(self, runtime):
        matrix, _ = make_matrix(runtime, RowBlock())
        before = runtime.traffic.total_bytes("get", remote_only=True)
        out = redistribute(matrix, RowBlock())
        assert runtime.traffic.total_bytes("get", remote_only=True) == before
        np.testing.assert_array_equal(out.to_dense(), matrix.to_dense())

    def test_clock_charged_for_cross_rank_moves(self, runtime):
        matrix, _ = make_matrix(runtime, RowBlock())
        runtime.reset_counters()
        redistribute(matrix, ColumnBlock())
        assert runtime.clock.makespan() > 0.0

    def test_simulate_only_charges_without_data(self, runtime):
        matrix = DistributedMatrix.create(runtime, (24, 20), RowBlock(), name="S",
                                          materialize=False)
        before = runtime.traffic.total_bytes("get", remote_only=True)
        out = redistribute(matrix, ColumnBlock())
        assert not out.materialized
        assert runtime.clock.makespan() > 0.0
        # No data exists, so no traffic records — only modelled time.
        assert runtime.traffic.total_bytes("get", remote_only=True) == before

    def test_cost_probe_matches_traffic(self, runtime):
        matrix, _ = make_matrix(runtime, RowBlock())
        cost = redistribution_cost(matrix, ColumnBlock())
        before = runtime.traffic.total_bytes("get", remote_only=True)
        redistribute(matrix, ColumnBlock())
        moved = runtime.traffic.total_bytes("get", remote_only=True) - before
        assert cost["moved_bytes"] == moved
        assert cost["modelled_time_s"] > 0.0
