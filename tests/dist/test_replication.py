"""Direct unit tests for replica-group bookkeeping and work-share math."""

import pytest

from repro.dist.replication import ReplicationSpec
from repro.util.validation import ReplicationError


class TestGroupStructure:
    def test_blocked_groups(self):
        spec = ReplicationSpec(12, 3)
        assert spec.num_replicas == 3
        assert spec.ranks_per_replica == 4
        assert list(spec.replica_ranks(0)) == [0, 1, 2, 3]
        assert list(spec.replica_ranks(2)) == [8, 9, 10, 11]

    def test_rank_of_and_inverse(self):
        spec = ReplicationSpec(12, 3)
        for replica in range(3):
            for position in range(4):
                rank = spec.rank_of(replica, position)
                assert spec.replica_of_rank(rank) == replica
                assert spec.position_of_rank(rank) == position

    def test_no_replication_is_identity(self):
        spec = ReplicationSpec(6, 1)
        for rank in range(6):
            assert spec.replica_of_rank(rank) == 0
            assert spec.position_of_rank(rank) == rank

    def test_full_replication_one_rank_per_replica(self):
        spec = ReplicationSpec(4, 4)
        assert spec.ranks_per_replica == 1
        for rank in range(4):
            assert spec.replica_of_rank(rank) == rank
            assert spec.position_of_rank(rank) == 0

    @pytest.mark.parametrize("num_ranks,factor", [(4, 3), (6, 4), (4, 8), (4, 0)])
    def test_invalid_factors_rejected(self, num_ranks, factor):
        with pytest.raises((ReplicationError, ValueError)):
            ReplicationSpec(num_ranks, factor)


class TestWorkShares:
    def test_shares_tile_the_extent_contiguously(self):
        spec = ReplicationSpec(6, 3)
        cursor = 0
        for replica in range(3):
            start, stop = spec.work_share(replica, 100)
            assert start == cursor
            cursor = stop
        assert cursor == 100

    def test_remainder_front_loaded(self):
        spec = ReplicationSpec(4, 4)
        shares = [spec.work_share(r, 10) for r in range(4)]
        assert shares == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_single_replica_gets_everything(self):
        spec = ReplicationSpec(8, 1)
        assert spec.work_share(0, 37) == (0, 37)

    def test_zero_extent(self):
        spec = ReplicationSpec(4, 2)
        assert spec.work_share(0, 0) == (0, 0)
        assert spec.work_share(1, 0) == (0, 0)

    def test_more_replicas_than_extent(self):
        spec = ReplicationSpec(8, 8)
        shares = [spec.work_share(r, 3) for r in range(8)]
        # The first three replicas get one element each; the rest are empty.
        assert shares[:3] == [(0, 1), (1, 2), (2, 3)]
        assert all(start == stop for start, stop in shares[3:])
