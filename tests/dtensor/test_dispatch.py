"""Unit tests for the DTensor-like matmul dispatcher."""

import numpy as np
import pytest

from repro.dtensor.device_mesh import DeviceMesh
from repro.dtensor.dispatch import dtensor_matmul, plan_matmul, simulate_dtensor_matmul
from repro.dtensor.dtensor import DTensor
from repro.dtensor.placement import Partial, Replicate, Shard
from repro.topology.machines import pvc_system, uniform_system
from repro.util.validation import ShapeError


@pytest.fixture
def mesh():
    return DeviceMesh(uniform_system(4))


@pytest.fixture
def operands():
    rng = np.random.default_rng(7)
    a = rng.standard_normal((24, 16)).astype(np.float32)
    b = rng.standard_normal((16, 20)).astype(np.float32)
    return a, b, a @ b


class TestDirectRules:
    def test_row_sharded_a_with_replicated_b_needs_no_comm(self, mesh):
        a = DTensor.symbolic(mesh, (1024, 512), Shard(0))
        b = DTensor.symbolic(mesh, (512, 768), Replicate())
        plan = plan_matmul(a, b)
        assert plan.rule == "stationary_a_rows"
        assert plan.communication_time == 0.0

    def test_replicated_a_with_col_sharded_b_needs_no_comm(self, mesh):
        a = DTensor.symbolic(mesh, (1024, 512), Replicate())
        b = DTensor.symbolic(mesh, (512, 768), Shard(1))
        plan = plan_matmul(a, b)
        assert plan.rule == "stationary_b_cols"
        assert plan.communication_time == 0.0

    def test_outer_product_rule_produces_partial_then_reduces(self, mesh):
        # k-sharded operands with a small output: the outer-product rule needs
        # no input reshard and only a cheap reduction of C.
        a = DTensor.symbolic(mesh, (1024, 8192), Shard(1))
        b = DTensor.symbolic(mesh, (8192, 768), Shard(0))
        plan = plan_matmul(a, b)
        assert plan.rule == "outer_product_partial"
        assert plan.a_reshard.time == 0.0 and plan.b_reshard.time == 0.0
        # The benchmark convention: a Partial output is reduced to a Shard.
        assert plan.out_reshard.collective in ("reduce_scatter", "all_reduce")

    def test_explicit_out_placement_respected(self, mesh):
        a = DTensor.symbolic(mesh, (1024, 8192), Shard(1))
        b = DTensor.symbolic(mesh, (8192, 768), Shard(0))
        plan = plan_matmul(a, b, out_placement=Replicate())
        assert isinstance(plan.out_placement, Replicate)


class TestReshardFallback:
    def test_mismatched_shardings_pay_reshard(self, mesh):
        a = DTensor.symbolic(mesh, (4096, 4096), Shard(0))
        b = DTensor.symbolic(mesh, (4096, 4096), Shard(0))
        plan = plan_matmul(a, b)
        assert plan.communication_time > 0.0
        assert plan.communication_bytes > 0

    def test_prefers_cheapest_reshard(self, mesh):
        # A is tiny, B is huge: resharding/gathering A must be preferred over B.
        a = DTensor.symbolic(mesh, (64, 256), Shard(0))
        b = DTensor.symbolic(mesh, (256, 1 << 15), Shard(1))
        plan = plan_matmul(a, b)
        assert plan.b_reshard.time == 0.0

    def test_shape_mismatch_rejected(self, mesh):
        a = DTensor.symbolic(mesh, (64, 100), Shard(0))
        b = DTensor.symbolic(mesh, (99, 64), Shard(0))
        with pytest.raises(ShapeError):
            plan_matmul(a, b)


class TestMaterializedExecution:
    @pytest.mark.parametrize("a_placement,b_placement", [
        (Shard(0), Replicate()),
        (Replicate(), Shard(1)),
        (Shard(1), Shard(0)),
        (Shard(0), Shard(0)),
        (Shard(1), Shard(1)),
        (Replicate(), Replicate()),
    ])
    def test_result_matches_numpy(self, mesh, operands, a_placement, b_placement):
        a_dense, b_dense, reference = operands
        a = DTensor.from_dense(mesh, a_dense, a_placement)
        b = DTensor.from_dense(mesh, b_dense, b_placement)
        result, plan = dtensor_matmul(a, b)
        np.testing.assert_allclose(result.to_dense(), reference, rtol=1e-4, atol=1e-4)
        assert plan.total_time > 0

    def test_symbolic_execution_returns_symbolic(self, mesh):
        a = DTensor.symbolic(mesh, (128, 64), Shard(0))
        b = DTensor.symbolic(mesh, (64, 96), Replicate())
        result, plan = dtensor_matmul(a, b)
        assert not result.is_materialized
        assert result.global_shape == (128, 96)


class TestSimulateHelper:
    def test_returns_expected_keys(self):
        mesh = DeviceMesh(pvc_system(12))
        outcome = simulate_dtensor_matmul(mesh, 1024, 49152, 12288, Shard(0), Shard(0))
        for key in ("rule", "simulated_time_s", "percent_of_peak",
                    "communication_bytes", "communication_time_s"):
            assert key in outcome
        assert 0 < outcome["percent_of_peak"] <= 100

    def test_dtensor_prefers_outer_product_for_large_weights(self):
        """The paper observes DTensor favouring outer-product style matmuls
        (Partial C) when the weight matrix is large relative to the input."""
        mesh = DeviceMesh(pvc_system(12))
        outcome = simulate_dtensor_matmul(mesh, 1024, 12288, 49152, Shard(0), Shard(0))
        assert outcome["rule"] == "outer_product_partial"
