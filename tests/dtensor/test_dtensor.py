"""Unit tests for the DTensor wrapper and redistribution."""

import numpy as np
import pytest

from repro.dtensor.device_mesh import DeviceMesh
from repro.dtensor.dtensor import DTensor
from repro.dtensor.placement import Partial, Replicate, Shard
from repro.topology.machines import uniform_system
from repro.util.validation import ShapeError


@pytest.fixture
def mesh():
    return DeviceMesh(uniform_system(4))


@pytest.fixture
def dense():
    return np.arange(8 * 12, dtype=np.float32).reshape(8, 12)


class TestConstruction:
    def test_shard_rows_round_trip(self, mesh, dense):
        tensor = DTensor.from_dense(mesh, dense, Shard(0))
        np.testing.assert_array_equal(tensor.to_dense(), dense)
        assert tensor.shard(0).shape == (2, 12)

    def test_shard_cols_round_trip(self, mesh, dense):
        tensor = DTensor.from_dense(mesh, dense, Shard(1))
        np.testing.assert_array_equal(tensor.to_dense(), dense)
        assert tensor.shard(0).shape == (8, 3)

    def test_replicate_every_rank_full_copy(self, mesh, dense):
        tensor = DTensor.from_dense(mesh, dense, Replicate())
        for rank in mesh:
            np.testing.assert_array_equal(tensor.shard(rank), dense)

    def test_partial_sums_to_value(self, mesh, dense):
        tensor = DTensor.from_dense(mesh, dense, Partial())
        np.testing.assert_array_equal(tensor.to_dense(), dense)

    def test_non_2d_rejected(self, mesh):
        with pytest.raises(ShapeError):
            DTensor.from_dense(mesh, np.ones(5), Shard(0))

    def test_symbolic_has_no_data(self, mesh):
        tensor = DTensor.symbolic(mesh, (1 << 14, 1 << 14), Shard(0))
        assert not tensor.is_materialized
        with pytest.raises(ShapeError):
            tensor.to_dense()
        with pytest.raises(ShapeError):
            tensor.shard(0)

    def test_local_shape(self, mesh):
        tensor = DTensor.symbolic(mesh, (100, 80), Shard(0))
        assert tensor.local_shape(0) == (25, 80)
        replicated = DTensor.symbolic(mesh, (100, 80), Replicate())
        assert replicated.local_shape(3) == (100, 80)

    def test_nbytes(self, mesh):
        tensor = DTensor.symbolic(mesh, (10, 10), Shard(0), dtype=np.float32)
        assert tensor.nbytes == 400


class TestRedistribute:
    def test_shard_to_replicate(self, mesh, dense):
        tensor = DTensor.from_dense(mesh, dense, Shard(0))
        out, cost = tensor.redistribute(Replicate())
        np.testing.assert_array_equal(out.to_dense(), dense)
        assert cost.collective == "all_gather"
        assert cost.time > 0

    def test_replicate_to_shard_is_free(self, mesh, dense):
        tensor = DTensor.from_dense(mesh, dense, Replicate())
        out, cost = tensor.redistribute(Shard(1))
        np.testing.assert_array_equal(out.to_dense(), dense)
        assert cost.time == 0.0

    def test_shard_dim_change_uses_all_to_all(self, mesh, dense):
        tensor = DTensor.from_dense(mesh, dense, Shard(0))
        out, cost = tensor.redistribute(Shard(1))
        np.testing.assert_array_equal(out.to_dense(), dense)
        assert cost.collective == "all_to_all"

    def test_partial_to_shard_uses_reduce_scatter(self, mesh, dense):
        tensor = DTensor.from_dense(mesh, dense, Partial())
        out, cost = tensor.redistribute(Shard(0))
        np.testing.assert_array_equal(out.to_dense(), dense)
        assert cost.collective == "reduce_scatter"

    def test_partial_to_replicate_uses_allreduce(self, mesh, dense):
        tensor = DTensor.from_dense(mesh, dense, Partial())
        out, cost = tensor.redistribute(Replicate())
        np.testing.assert_array_equal(out.to_dense(), dense)
        assert cost.collective == "all_reduce"

    def test_same_placement_is_free(self, mesh, dense):
        tensor = DTensor.from_dense(mesh, dense, Shard(0))
        _, cost = tensor.redistribute(Shard(0))
        assert cost.time == 0.0 and cost.bytes_moved == 0

    def test_symbolic_redistribute_keeps_symbolic(self, mesh):
        tensor = DTensor.symbolic(mesh, (1024, 1024), Shard(0))
        out, cost = tensor.redistribute(Replicate())
        assert not out.is_materialized
        assert cost.time > 0

    def test_all_gather_slower_for_bigger_tensors(self, mesh):
        small = DTensor.symbolic(mesh, (256, 256), Shard(0)).redistribute_cost(Replicate())
        large = DTensor.symbolic(mesh, (4096, 4096), Shard(0)).redistribute_cost(Replicate())
        assert large.time > small.time


class TestSmallTensorAllToAll:
    def test_small_shard_to_shard_costs_more_than_nothing(self, mesh, dense):
        """Regression: ``nbytes // size**2`` floored the per-pair payload,
        pricing any tensor under ``size^2`` bytes as a zero-cost reshard and
        truncating everything else.  The modelled per-pair payload of this
        384-byte tensor is 384/16 = 24 bytes and must price > 0."""
        tensor = DTensor.from_dense(mesh, dense, Shard(0))
        cost = tensor.redistribute_cost(Shard(1))
        assert cost.collective == "all_to_all"
        assert cost.time > 0.0

    def test_tiny_symbolic_shard_to_shard_is_positive(self, mesh):
        # 2x2 float32 = 16 bytes == size^2 on 4 devices: the old floor
        # division priced exactly this boundary (and anything smaller) at 0.
        tiny = DTensor.symbolic(mesh, (2, 2), Shard(0), dtype=np.float32)
        cost = tiny.redistribute_cost(Shard(1))
        assert cost.time > 0.0
        smaller = DTensor.symbolic(mesh, (2, 1), Shard(0), dtype=np.float32)
        assert smaller.redistribute_cost(Shard(1)).time > 0.0

    def test_all_to_all_time_scales_with_bytes(self, mesh):
        small = DTensor.symbolic(mesh, (64, 64), Shard(0), dtype=np.float32)
        large = DTensor.symbolic(mesh, (512, 512), Shard(0), dtype=np.float32)
        assert large.redistribute_cost(Shard(1)).time > \
            small.redistribute_cost(Shard(1)).time
