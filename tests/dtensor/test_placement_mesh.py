"""Unit tests for placements and device meshes."""

import pytest

from repro.dtensor.device_mesh import DeviceMesh
from repro.dtensor.placement import Partial, Replicate, Shard
from repro.topology.machines import pvc_system, uniform_system


class TestPlacements:
    def test_shard_dims(self):
        assert Shard(0).is_shard()
        assert Shard(0).is_shard(0)
        assert not Shard(0).is_shard(1)

    def test_invalid_shard_dim(self):
        with pytest.raises(ValueError):
            Shard(2)

    def test_replicate_and_partial_flags(self):
        assert Replicate().is_replicate()
        assert Partial().is_partial()
        assert not Replicate().is_partial()
        assert not Partial().is_shard()

    def test_value_equality(self):
        assert Shard(1) == Shard(1)
        assert Shard(0) != Shard(1)
        assert Replicate() == Replicate()
        assert Partial() == Partial()

    def test_str_forms(self):
        assert str(Shard(1)) == "Shard(1)"
        assert str(Replicate()) == "Replicate()"
        assert str(Partial()) == "Partial()"


class TestDeviceMesh:
    def test_default_covers_machine(self):
        mesh = DeviceMesh(pvc_system(12))
        assert mesh.size == 12
        assert mesh.device_ranks == list(range(12))

    def test_subset_mesh(self):
        mesh = DeviceMesh(pvc_system(12), ranks=[0, 2, 4, 6])
        assert mesh.size == 4

    def test_out_of_range_rank_rejected(self):
        with pytest.raises(ValueError):
            DeviceMesh(uniform_system(4), ranks=[0, 7])

    def test_cost_and_collective_models(self):
        mesh = DeviceMesh(uniform_system(4))
        assert mesh.cost_model().machine is mesh.machine
        assert mesh.collectives().machine is mesh.machine

    def test_iteration(self):
        mesh = DeviceMesh(uniform_system(3))
        assert list(mesh) == [0, 1, 2]
