"""Integration tests spanning the whole stack.

These scenarios mirror how a downstream user (or the benchmark harness) uses
the library: build a runtime for a paper machine, distribute GPT-MLP-shaped
operands (scaled down), multiply them under several strategies, compare
against the DTensor comparator and the classical baselines, and check the
qualitative claims of the paper's evaluation at small scale.
"""

import numpy as np
import pytest

from repro import (
    Block2D,
    ColumnBlock,
    DistributedMatrix,
    ExecutionConfig,
    ExecutionMode,
    LoweringStrategy,
    RowBlock,
    Runtime,
    Stationary,
    universal_matmul,
)
from repro.baselines import Summa
from repro.bench.schemes import scheme_by_name
from repro.bench.sweep import best_per_scheme, run_dtensor_series, run_ua_sweep
from repro.bench.workloads import mlp1_workload, mlp2_workload
from repro.dist import redistribute
from repro.dtensor import DeviceMesh, DTensor, Shard, dtensor_matmul
from repro.topology import h100_system, pvc_system


class TestMlpPipeline:
    """A two-layer MLP forward pass entirely through the public API."""

    def test_megatron_style_mlp_forward(self):
        runtime = Runtime(machine=pvc_system(12))
        rng = np.random.default_rng(0)
        batch, hidden, expansion = 64, 96, 384

        x_dense = rng.standard_normal((batch, hidden)).astype(np.float64)
        w1_dense = rng.standard_normal((hidden, expansion)).astype(np.float64)
        w2_dense = rng.standard_normal((expansion, hidden)).astype(np.float64)

        # Megatron-LM style: X replicated, W1 column-distributed, W2 row-distributed.
        x = DistributedMatrix.from_dense(runtime, x_dense, RowBlock(), replication=12,
                                         name="X")
        w1 = DistributedMatrix.from_dense(runtime, w1_dense, ColumnBlock(), name="W1")
        h = DistributedMatrix.create(runtime, (batch, expansion), ColumnBlock(),
                                     dtype=np.float64, name="H")
        universal_matmul(x, w1, h, stationary="B")

        w2 = DistributedMatrix.from_dense(runtime, w2_dense, RowBlock(), name="W2")
        y = DistributedMatrix.create(runtime, (batch, hidden), Block2D(),
                                     dtype=np.float64, name="Y")
        universal_matmul(h, w2, y, stationary="B")

        np.testing.assert_allclose(y.to_dense(), (x_dense @ w1_dense) @ w2_dense,
                                   rtol=1e-9, atol=1e-8)

    def test_sequence_parallel_first_layer(self):
        """Sequence parallelism: inputs row(sequence)-partitioned, weights replicated."""
        runtime = Runtime(machine=pvc_system(12))
        rng = np.random.default_rng(1)
        batch, hidden, expansion = 72, 48, 192
        x_dense = rng.standard_normal((batch, hidden)).astype(np.float64)
        w_dense = rng.standard_normal((hidden, expansion)).astype(np.float64)

        x = DistributedMatrix.from_dense(runtime, x_dense, RowBlock(), name="X")
        w = DistributedMatrix.from_dense(runtime, w_dense, RowBlock(), replication=12,
                                         name="W")
        y = DistributedMatrix.create(runtime, (batch, expansion), RowBlock(),
                                     dtype=np.float64, name="Y")
        result = universal_matmul(x, w, y, stationary="C")
        np.testing.assert_allclose(y.to_dense(), x_dense @ w_dense, rtol=1e-9)
        # Fully local: weights are replicated, activations and outputs co-located.
        assert result.remote_get_bytes == 0
        assert result.remote_accumulate_bytes == 0


class TestCrossImplementationAgreement:
    def test_universal_algorithm_agrees_with_baselines_and_dtensor(self):
        rng = np.random.default_rng(2)
        a_dense = rng.standard_normal((48, 40)).astype(np.float64)
        b_dense = rng.standard_normal((40, 56)).astype(np.float64)
        reference = a_dense @ b_dense

        # Universal algorithm.
        runtime = Runtime(machine=pvc_system(12))
        a = DistributedMatrix.from_dense(runtime, a_dense, Block2D(), name="A")
        b = DistributedMatrix.from_dense(runtime, b_dense, Block2D(), name="B")
        c = DistributedMatrix.create(runtime, (48, 56), Block2D(), dtype=np.float64,
                                     name="C")
        universal_matmul(a, b, c)
        np.testing.assert_allclose(c.to_dense(), reference, rtol=1e-9)

        # SUMMA baseline.
        np.testing.assert_allclose(Summa().run(a_dense, b_dense, num_procs=12),
                                   reference, rtol=1e-9)

        # DTensor comparator.
        mesh = DeviceMesh(pvc_system(12))
        da = DTensor.from_dense(mesh, a_dense, Shard(0))
        db = DTensor.from_dense(mesh, b_dense, Shard(0))
        dc, _ = dtensor_matmul(da, db)
        np.testing.assert_allclose(dc.to_dense(), reference, rtol=1e-9)

    def test_direct_and_ir_execution_same_result_and_similar_time(self):
        """Paper §5.2: direct execution is almost always as good as the optimal schedule."""
        rng = np.random.default_rng(3)
        a_dense = rng.standard_normal((60, 48)).astype(np.float64)
        b_dense = rng.standard_normal((48, 36)).astype(np.float64)

        results = {}
        for mode, lowering in ((ExecutionMode.DIRECT, None),
                               (ExecutionMode.IR, LoweringStrategy.COST_GREEDY)):
            runtime = Runtime(machine=pvc_system(12))
            a = DistributedMatrix.from_dense(runtime, a_dense, RowBlock(), name="A")
            b = DistributedMatrix.from_dense(runtime, b_dense, ColumnBlock(), name="B")
            c = DistributedMatrix.create(runtime, (60, 36), Block2D(), dtype=np.float64,
                                         name="C")
            config = ExecutionConfig(mode=mode) if lowering is None else \
                ExecutionConfig(mode=mode, lowering=lowering)
            results[mode] = universal_matmul(a, b, c, stationary="C", config=config)
            np.testing.assert_allclose(c.to_dense(), a_dense @ b_dense, rtol=1e-9)

        direct = results[ExecutionMode.DIRECT].simulated_time
        lowered = results[ExecutionMode.IR].simulated_time
        assert direct <= lowered * 2.0  # same ballpark


class TestReshardingVersusUniversal:
    def test_resharding_then_multiplying_matches_direct_universal(self):
        """The universal algorithm must give the same numbers a reshard+multiply gives."""
        rng = np.random.default_rng(4)
        a_dense = rng.standard_normal((40, 32)).astype(np.float64)
        b_dense = rng.standard_normal((32, 44)).astype(np.float64)

        runtime = Runtime(machine=pvc_system(12))
        a = DistributedMatrix.from_dense(runtime, a_dense, RowBlock(), name="A")
        b = DistributedMatrix.from_dense(runtime, b_dense, RowBlock(), name="B")

        # Direct universal multiply on the mismatched layouts.
        c_direct = DistributedMatrix.create(runtime, (40, 44), Block2D(),
                                            dtype=np.float64, name="Cd")
        universal_matmul(a, b, c_direct)

        # Reshard B to a column layout first (what an SPMD system might do).
        b_resharded = redistribute(b, ColumnBlock())
        c_resharded = DistributedMatrix.create(runtime, (40, 44), Block2D(),
                                               dtype=np.float64, name="Cr")
        universal_matmul(a, b_resharded, c_resharded)

        np.testing.assert_allclose(c_direct.to_dense(), c_resharded.to_dense(), rtol=1e-9)


class TestEvaluationShapeAtSmallScale:
    """Scaled-down sanity checks of the figures' qualitative shape."""

    @pytest.fixture(scope="class")
    def pvc(self):
        return pvc_system(12)

    def test_mlp1_column_beats_row(self, pvc):
        workload = mlp1_workload(8192).scaled(1 / 8)
        config = ExecutionConfig(simulate_only=True)
        points = run_ua_sweep(pvc, [workload],
                              schemes=[scheme_by_name("column"), scheme_by_name("row")],
                              replication_factors=[1], stationary_options=("B", "C"),
                              config=config)
        best = {p.series: p.percent_of_peak for p in best_per_scheme(points)}
        assert best["UA - Column"] > best["UA - Row"]

    def test_mlp2_outer_product_beats_row(self, pvc):
        workload = mlp2_workload(8192).scaled(1 / 8)
        config = ExecutionConfig(simulate_only=True)
        points = run_ua_sweep(pvc, [workload],
                              schemes=[scheme_by_name("outer"), scheme_by_name("row")],
                              replication_factors=[1, 2], stationary_options=("B", "C"),
                              config=config)
        best = {p.series: p.percent_of_peak for p in best_per_scheme(points)}
        assert best["UA - Outer Prod."] > best["UA - Row"]

    def test_best_ua_at_least_competitive_with_dtensor(self, pvc):
        # At 1/4 of the paper's problem size the per-op overheads are already
        # amortised enough for the comparison to be meaningful.
        workload = mlp1_workload(4096).scaled(1 / 4)
        config = ExecutionConfig(simulate_only=True)
        ua_points = run_ua_sweep(pvc, [workload], replication_factors=[1, 2],
                                 stationary_options=("B", "C"), config=config)
        dt_points = run_dtensor_series(pvc, [workload])
        best_ua = max(p.percent_of_peak for p in ua_points)
        best_dt = max(p.percent_of_peak for p in dt_points)
        assert best_ua >= 0.9 * best_dt

    def test_h100_compresses_partitioning_differences(self):
        """Figure 3: with 17x more link bandwidth per flop the spread shrinks."""
        workload = mlp1_workload(4096).scaled(1 / 8)
        config = ExecutionConfig(simulate_only=True)
        spreads = {}
        for machine in (pvc_system(12), h100_system(8)):
            points = run_ua_sweep(machine, [workload],
                                  schemes=[scheme_by_name("column"), scheme_by_name("row")],
                                  replication_factors=[1], stationary_options=("C",),
                                  config=config)
            best = {p.series: p.percent_of_peak for p in best_per_scheme(points)}
            spreads[machine.name] = best["UA - Column"] - best["UA - Row"]
        assert spreads["h100"] < spreads["pvc"]
