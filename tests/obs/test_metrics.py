"""Unit tests for the metrics registry: instruments, merging, Prometheus export."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    MetricsRegistry,
    empty_snapshot,
    instrument_name,
    merge_snapshots,
    render_prometheus,
    split_instrument_name,
)


class TestInstrumentNames:
    def test_bare_name_without_labels(self):
        assert instrument_name("repro_requests_total", {}) == "repro_requests_total"

    def test_labels_render_sorted(self):
        full = instrument_name("m", {"b": "2", "a": "1"})
        assert full == 'm{a="1",b="2"}'

    def test_split_roundtrip(self):
        full = instrument_name("m", {"outcome": "hit"})
        assert split_instrument_name(full) == ("m", 'outcome="hit"')
        assert split_instrument_name("plain") == ("plain", "")


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value == pytest.approx(7.0)

    def test_histogram_bins_and_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 100.0):
            hist.observe(value)
        state = hist.state()
        assert state["buckets"] == [1.0, 10.0]
        assert state["counts"] == [1, 1, 1]  # <=1, <=10, +Inf
        assert hist.count == 3
        assert hist.sum == pytest.approx(105.5)

    def test_histogram_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())

    def test_same_name_and_labels_memoized(self):
        registry = MetricsRegistry()
        a = registry.counter("c", outcome="hit")
        b = registry.counter("c", outcome="hit")
        c = registry.counter("c", outcome="miss")
        assert a is b
        assert a is not c

    def test_default_latency_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestSnapshot:
    def test_snapshot_layout(self):
        registry = MetricsRegistry()
        registry.counter("c_total", help="requests").inc(4)
        registry.gauge("g").set(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c_total": 4.0}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        assert snap["help"]["c_total"] == "requests"

    def test_null_registry_costs_nothing(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.counter("c") is NULL_INSTRUMENT
        NULL_REGISTRY.counter("c").inc()
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(1.0)
        assert NULL_REGISTRY.snapshot() == empty_snapshot()

    def test_concurrent_updates_are_not_lost(self):
        """inc/observe racing snapshot() must neither crash nor drop counts."""
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        hist = registry.histogram("h", buckets=(0.5,))
        snapshots = []

        def writer():
            for _ in range(500):
                counter.inc()
                hist.observe(0.1)

        def reader():
            for _ in range(50):
                snapshots.append(registry.snapshot())

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads.append(threading.Thread(target=reader))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 2000.0
        assert hist.count == 2000
        # Snapshots taken mid-flight are internally consistent.
        for snap in snapshots:
            state = snap["histograms"].get("h")
            if state is not None:
                assert sum(state["counts"]) == state["count"]


class TestMerge:
    def _worker_snapshot(self, requests, observations):
        registry = MetricsRegistry()
        registry.counter("req_total", outcome="hit").inc(requests)
        registry.gauge("entries").set(requests)
        hist = registry.histogram("lat", buckets=(1.0, 10.0))
        for value in observations:
            hist.observe(value)
        return registry.snapshot()

    def test_merge_sums_everything(self):
        merged = merge_snapshots([
            self._worker_snapshot(3, [0.5, 5.0]),
            self._worker_snapshot(7, [20.0]),
        ])
        assert merged["counters"]['req_total{outcome="hit"}'] == 10.0
        assert merged["gauges"]["entries"] == 10.0
        hist = merged["histograms"]["lat"]
        assert hist["counts"] == [1, 1, 1]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(25.5)

    def test_merge_of_empty_is_empty(self):
        assert merge_snapshots([]) == empty_snapshot()
        assert merge_snapshots([empty_snapshot(), empty_snapshot()]) == empty_snapshot()

    def test_merge_rejects_mismatched_buckets(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots([a.snapshot(), b.snapshot()])


class TestPrometheus:
    def test_renders_headers_and_samples(self):
        registry = MetricsRegistry()
        registry.counter("req_total", help="served requests", outcome="hit").inc(5)
        registry.counter("req_total", outcome="miss").inc(2)
        registry.gauge("entries").set(3)
        text = render_prometheus(registry.snapshot())
        assert "# HELP req_total served requests" in text
        assert "# TYPE req_total counter" in text
        assert text.count("# TYPE req_total counter") == 1  # one header per base
        assert 'req_total{outcome="hit"} 5' in text
        assert 'req_total{outcome="miss"} 2' in text
        assert "# TYPE entries gauge" in text
        assert "entries 3" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            hist.observe(value)
        text = render_prometheus(registry.snapshot())
        assert 'lat_bucket{le="1.0"} 2' in text
        assert 'lat_bucket{le="10.0"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_sum" in text
        assert "lat_count 4" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(empty_snapshot()) == ""
