"""Unit tests for the request log (rotation, crash recovery) and its rollup."""

import json
import os
import threading

import pytest

from repro.obs.reqlog import (
    RequestLog,
    RequestRecord,
    discover_logs,
    generations,
    iter_records,
)
from repro.obs.rollup import Rollup, percentile, rollup_requests


def make_record(signature="sig-a", outcome="hit", ts=100.0, plan_age=1.0,
                latency=0.01, worker=0, trace_id=None):
    return RequestRecord(ts=ts, signature=signature, workload="w",
                         outcome=outcome, plan_age=plan_age, latency=latency,
                         worker=worker, pid=os.getpid(), trace_id=trace_id)


class TestRequestLog:
    def test_append_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "requests.jsonl")
        with RequestLog(path) as log:
            log.append(make_record(outcome="computed",
                                   plan_age=0.0, trace_id="abc"))
            log.append(make_record(outcome="hit", plan_age=3.5))
            assert log.records_written == 2
        records = list(iter_records(path))
        assert [r.outcome for r in records] == ["computed", "hit"]
        assert records[0].trace_id == "abc"
        assert records[1].plan_age == pytest.approx(3.5)

    def test_rotation_keeps_bounded_generations(self, tmp_path):
        path = str(tmp_path / "requests.jsonl")
        line_size = len(json.dumps(make_record().to_dict(),
                                   separators=(",", ":"))) + 1
        with RequestLog(path, max_bytes=2 * line_size, max_files=2) as log:
            for index in range(9):
                log.append(make_record(ts=float(index)))
        files = generations(path)
        assert files == [f"{path}.2", f"{path}.1", path]
        # Oldest generations were unlinked, but every surviving record replays
        # in ts order across the generation chain.
        timestamps = [r.ts for r in iter_records(path)]
        assert timestamps == sorted(timestamps)
        assert 0 < len(timestamps) <= 6  # at most 2 lines per surviving file

    def test_max_files_zero_truncates_instead_of_rotating(self, tmp_path):
        path = str(tmp_path / "requests.jsonl")
        line_size = len(json.dumps(make_record().to_dict(),
                                   separators=(",", ":"))) + 1
        with RequestLog(path, max_bytes=2 * line_size, max_files=0) as log:
            for index in range(7):
                log.append(make_record(ts=float(index)))
        assert generations(path) == [path]

    def test_crash_truncated_tail_is_skipped(self, tmp_path):
        """A torn final line (the crash failure mode) must not break replay."""
        path = str(tmp_path / "requests.jsonl")
        with RequestLog(path) as log:
            log.append(make_record(ts=1.0))
            log.append(make_record(ts=2.0))
        # Simulate a crash mid-append: truncate into the middle of line 2.
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 10)
        records = list(iter_records(path))
        assert [r.ts for r in records] == [1.0]
        # The appender reopens and keeps writing after the torn tail.
        with RequestLog(path) as log:
            log.append(make_record(ts=3.0))
        assert [r.ts for r in iter_records(path)] == [1.0, 3.0]

    def test_foreign_junk_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "requests.jsonl")
        with RequestLog(path) as log:
            log.append(make_record(ts=1.0))
        with open(path, "ab") as handle:
            handle.write(b"\xff\xfe not json\n")
            handle.write(b'["a", "list"]\n')
            handle.write(b"\n")
        with RequestLog(path) as log:
            log.append(make_record(ts=2.0))
        assert [r.ts for r in iter_records(path)] == [1.0, 2.0]

    def test_concurrent_appends_stay_line_atomic(self, tmp_path):
        path = str(tmp_path / "requests.jsonl")
        log = RequestLog(path)

        def writer(tag):
            for index in range(50):
                log.append(make_record(signature=f"sig-{tag}", ts=float(index)))

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()
        assert len(list(iter_records(path))) == 200

    def test_invalid_bounds_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RequestLog(str(tmp_path / "x.jsonl"), max_bytes=0)
        with pytest.raises(ValueError):
            RequestLog(str(tmp_path / "x.jsonl"), max_files=-1)

    def test_discover_logs_resolves_a_fleet_directory(self, tmp_path):
        for worker in range(2):
            with RequestLog(str(tmp_path / f"requests-{worker}.jsonl")) as log:
                log.append(make_record(worker=worker))
        (tmp_path / "ignored.txt").write_text("not a log")
        found = discover_logs(str(tmp_path))
        assert [os.path.basename(p) for p in found] == [
            "requests-0.jsonl", "requests-1.jsonl"]
        assert {r.worker for r in iter_records(str(tmp_path))} == {0, 1}


class TestPercentile:
    def test_interpolates(self):
        values = [0.0, 10.0]
        assert percentile(values, 0.5) == pytest.approx(5.0)
        assert percentile(values, 0.9) == pytest.approx(9.0)

    def test_degenerate_inputs(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([42.0], 0.9) == 42.0


class TestRollup:
    def _write_fleet_logs(self, tmp_path):
        """Two workers, two signatures: sig-hot (4 reqs) and sig-cold (1)."""
        for worker, items in enumerate([
            [("sig-hot", "hit", 2.0, 0.001), ("sig-hot", "hit", 4.0, 0.002),
             ("sig-cold", "computed", 0.0, 0.5)],
            [("sig-hot", "hit", 6.0, 0.003), ("sig-hot", "computed", 0.0, 0.4)],
        ]):
            with RequestLog(str(tmp_path / f"requests-{worker}.jsonl")) as log:
                for index, (sig, outcome, age, latency) in enumerate(items):
                    log.append(make_record(signature=sig, outcome=outcome,
                                           ts=100.0 + index, plan_age=age,
                                           latency=latency, worker=worker))

    def test_aggregates_per_signature(self, tmp_path):
        self._write_fleet_logs(tmp_path)
        rollup = rollup_requests(str(tmp_path))
        assert rollup.records == 5
        hot = rollup.signatures["sig-hot"]
        assert (hot.requests, hot.hits, hot.computed) == (4, 3, 1)
        assert hot.hit_rate == pytest.approx(0.75)
        assert hot.age_max == pytest.approx(6.0)
        assert hot.age_p50 == pytest.approx(3.0)  # of [0, 2, 4, 6]
        assert hot.latency_max == pytest.approx(0.4)
        assert hot.workers == 2
        cold = rollup.signatures["sig-cold"]
        assert (cold.requests, cold.computed) == (1, 1)
        assert cold.workers == 1

    def test_top_and_traffic_weights(self, tmp_path):
        self._write_fleet_logs(tmp_path)
        rollup = rollup_requests(str(tmp_path))
        top = rollup.top(1)
        assert [agg.signature for agg in top] == ["sig-hot"]
        assert rollup.traffic_weights() == {"sig-hot": 4.0, "sig-cold": 1.0}

    def test_since_ts_window(self, tmp_path):
        self._write_fleet_logs(tmp_path)
        windowed = rollup_requests(str(tmp_path), since_ts=101.5)
        # Only worker 0's third record (ts=102.0, sig-cold) is recent enough.
        assert windowed.records == 1
        assert list(windowed.signatures) == ["sig-cold"]

    def test_save_load_roundtrip(self, tmp_path):
        self._write_fleet_logs(tmp_path)
        rollup = rollup_requests(str(tmp_path))
        path = str(tmp_path / "artifacts" / "rollup.json")
        rollup.save(path)
        loaded = Rollup.load(path)
        assert loaded.records == 5
        assert loaded.traffic_weights() == rollup.traffic_weights()
        assert loaded.signatures["sig-hot"].age_p90 == pytest.approx(
            rollup.signatures["sig-hot"].age_p90)

    def test_load_missing_or_corrupt_yields_empty(self, tmp_path):
        assert Rollup.load(str(tmp_path / "nope.json")).records == 0
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert Rollup.load(str(bad)).records == 0
        versioned = tmp_path / "versioned.json"
        versioned.write_text(json.dumps({"version": 999, "signatures": {}}))
        assert Rollup.load(str(versioned)).records == 0

    def test_stale_outcome_counts_as_hit_and_stale(self, tmp_path):
        path = str(tmp_path / "requests.jsonl")
        with RequestLog(path) as log:
            log.append(make_record(outcome="hit"))
            log.append(make_record(outcome="stale", plan_age=12.0))
        rollup = rollup_requests(path)
        agg = rollup.signatures["sig-a"]
        assert (agg.requests, agg.hits, agg.stale) == (2, 2, 1)
        assert agg.hit_rate == pytest.approx(1.0)

    def test_stale_survives_save_load(self, tmp_path):
        log_path = str(tmp_path / "requests.jsonl")
        with RequestLog(log_path) as log:
            log.append(make_record(outcome="stale"))
        rollup = rollup_requests(log_path)
        artifact = str(tmp_path / "rollup.json")
        rollup.save(artifact)
        assert Rollup.load(artifact).signatures["sig-a"].stale == 1

    def test_top_breaks_traffic_ties_on_signature_key(self, tmp_path):
        path = str(tmp_path / "requests.jsonl")
        with RequestLog(path) as log:
            # Insertion order deliberately descends; ties must re-sort.
            for signature in ("sig-z", "sig-m", "sig-a"):
                log.append(make_record(signature=signature))
        rollup = rollup_requests(path)
        assert [agg.signature for agg in rollup.top(3)] \
            == ["sig-a", "sig-m", "sig-z"]
