"""Unit tests for span recording, context propagation, and Chrome export."""

import json

import pytest

from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    SpanRecord,
    Tracer,
    current_span_id,
    current_trace_id,
    new_id,
)


class TestSpans:
    def test_root_span_gets_fresh_trace_id(self):
        tracer = Tracer(role="test")
        with tracer.span("root"):
            assert current_trace_id() is not None
            assert current_span_id() is not None
        assert current_trace_id() is None
        (span,) = tracer.spans()
        assert span.name == "root"
        assert span.parent_id is None
        assert span.duration >= 0.0
        assert span.role == "test"

    def test_children_nest_under_the_ambient_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            outer_id = current_span_id()
            with tracer.span("inner"):
                assert current_span_id() != outer_id
            assert current_span_id() == outer_id
        spans = {s.name: s for s in tracer.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].trace_id == spans["outer"].trace_id

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("work", workload="mlp1") as span:
            span.set(outcome="hit")
        (record,) = tracer.spans()
        assert record.attributes == {"workload": "mlp1", "outcome": "hit"}

    def test_exception_marks_the_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (record,) = tracer.spans()
        assert record.attributes["error"] == "RuntimeError"
        assert current_trace_id() is None  # context restored despite the raise

    def test_disabled_tracer_hands_out_the_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything")
        assert span is NULL_SPAN
        with span as entered:
            entered.set(ignored=True)
        assert len(tracer) == 0
        assert NULL_TRACER.span("x") is NULL_SPAN

    def test_retention_cap_drops_oldest(self):
        tracer = Tracer(max_spans=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_max_spans_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_new_ids_are_distinct_hex(self):
        a, b = new_id(), new_id()
        assert a != b
        assert len(a) == 16
        int(a, 16)  # parses as hex


class TestRemoteContext:
    def test_adopted_context_parents_spans_across_the_boundary(self):
        client = Tracer(role="client")
        worker = Tracer(role="worker-0")
        with client.span("client.plan"):
            trace_id = current_trace_id()
            parent = current_span_id()
        with worker.remote_context(trace_id, parent):
            with worker.span("worker.plan"):
                pass
        (worker_span,) = worker.spans()
        assert worker_span.trace_id == trace_id
        assert worker_span.parent_id == parent

    def test_context_restored_after_adoption(self):
        tracer = Tracer()
        with tracer.remote_context("t" * 16, "p" * 16):
            assert current_trace_id() == "t" * 16
        assert current_trace_id() is None

    def test_drain_removes_only_the_requested_trace(self):
        tracer = Tracer()
        with tracer.remote_context("trace-a", None):
            with tracer.span("a"):
                pass
        with tracer.remote_context("trace-b", None):
            with tracer.span("b"):
                pass
        drained = tracer.drain("trace-a")
        assert [d["name"] for d in drained] == ["a"]
        assert [s.name for s in tracer.spans()] == ["b"]

    def test_absorb_roundtrips_wire_dicts(self):
        """Drained worker spans absorbed client-side reproduce the records."""
        worker = Tracer(role="worker-1")
        with worker.remote_context("shared-trace", "parent-span"):
            with worker.span("worker.plan", worker=1):
                pass
        wire = worker.drain("shared-trace")
        json.dumps(wire)  # must be JSON-serializable as-is

        client = Tracer(role="client")
        assert client.absorb(wire) == 1
        (span,) = client.spans("shared-trace")
        assert span.name == "worker.plan"
        assert span.role == "worker-1"
        assert span.parent_id == "parent-span"

    def test_absorb_works_on_a_disabled_tracer(self):
        collector = Tracer(enabled=False)
        record = SpanRecord(name="s", trace_id="t", span_id="i",
                            parent_id=None, start=1.0, duration=0.5)
        assert collector.absorb([record.to_dict()]) == 1
        assert len(collector) == 1


class TestChromeExport:
    def _two_process_trace(self):
        client = Tracer(role="client")
        with client.span("client.plan"):
            trace_id = current_trace_id()
            parent = current_span_id()
        worker = Tracer(role="worker-0")
        with worker.remote_context(trace_id, parent):
            with worker.span("worker.plan"):
                pass
        client.absorb(worker.drain(trace_id))
        return client, trace_id

    def test_chrome_trace_format(self):
        client, trace_id = self._two_process_trace()
        trace = client.chrome_trace(trace_id)
        events = trace["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in slices} == {"client.plan", "worker.plan"}
        # Every slice carries the request id; timestamps are normalized.
        assert all(e["args"]["trace_id"] == trace_id for e in slices)
        assert min(e["ts"] for e in slices) == pytest.approx(0.0)
        # One process_name metadata row per pid observed.
        assert {e["name"] for e in metadata} == {"process_name"}
        assert trace["displayTimeUnit"] == "ms"

    def test_dump_chrome_trace_writes_loadable_json(self, tmp_path):
        client, trace_id = self._two_process_trace()
        path = str(tmp_path / "trace.json")
        assert client.dump_chrome_trace(path, trace_id) == path
        payload = json.load(open(path))
        assert len([e for e in payload["traceEvents"] if e["ph"] == "X"]) == 2

    def test_clear_drops_everything(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.chrome_trace()["traceEvents"] == []
