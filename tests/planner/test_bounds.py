"""The critical-path pruning bound: admissibility, ranking identity, and
the strictly-fewer-simulations guarantee on communication-bound workloads."""

import pytest

from repro.bench.schemes import ua_schemes
from repro.bench.sweep import run_ua_point
from repro.bench.workloads import Workload, attention_workload
from repro.core.config import ExecutionConfig, ExecutionMode
from repro.planner.search import (
    BOUND_CRITICAL_PATH,
    BOUND_OCCUPANCY,
    Candidate,
    candidate_lower_bound,
    search_partitionings,
)
from repro.topology.machines import GB, uniform_system

CONFIG = ExecutionConfig(simulate_only=True)
#: Outer products on a slow fabric: accumulation traffic dominates compute.
COMM_BOUND_MACHINE = uniform_system(4)
COMM_BOUND_WORKLOAD = attention_workload(256, 64)


def _ranking(recommendations):
    return [(r.scheme.name, r.replication, r.stationary, r.simulated_time)
            for r in recommendations]


class TestAdmissibility:
    @pytest.mark.parametrize("scheme", ua_schemes(), ids=lambda s: s.name)
    @pytest.mark.parametrize("stationary", ["A", "B", "C"])
    def test_both_bounds_below_simulated_time(self, scheme, stationary):
        machine = uniform_system(4, link_bandwidth=10 * GB)
        workload = Workload("adm", 96, 160, 224)
        candidate = Candidate(index=0, scheme=scheme, replication=(2, 2, 2),
                              stationary=stationary, memory_per_device=0)
        simulated = run_ua_point(machine, workload, scheme, (2, 2, 2),
                                 stationary, CONFIG).simulated_time
        for bound in (BOUND_OCCUPANCY, BOUND_CRITICAL_PATH):
            value = candidate_lower_bound(machine, workload, candidate,
                                          CONFIG, bound)
            assert value <= simulated * (1 + 1e-12), (bound, value, simulated)

    def test_critical_path_dominates_occupancy(self):
        machine = COMM_BOUND_MACHINE
        workload = COMM_BOUND_WORKLOAD
        scheme = next(s for s in ua_schemes() if s.name == "outer")
        candidate = Candidate(index=0, scheme=scheme, replication=(1, 1, 1),
                              stationary="C", memory_per_device=0)
        occupancy = candidate_lower_bound(machine, workload, candidate,
                                          CONFIG, BOUND_OCCUPANCY)
        critical = candidate_lower_bound(machine, workload, candidate,
                                         CONFIG, BOUND_CRITICAL_PATH)
        assert critical >= occupancy
        # On this communication-bound point the chain bound is strictly tighter.
        assert critical > occupancy * (1 + 1e-9)

    def test_unknown_bound_rejected(self):
        scheme = ua_schemes()[0]
        candidate = Candidate(index=0, scheme=scheme, replication=(1, 1, 1),
                              stationary="A", memory_per_device=0)
        with pytest.raises(ValueError, match="unknown bound"):
            candidate_lower_bound(COMM_BOUND_MACHINE, COMM_BOUND_WORKLOAD,
                                  candidate, CONFIG, "roofline")
        with pytest.raises(ValueError, match="unknown bound"):
            search_partitionings(COMM_BOUND_MACHINE, COMM_BOUND_WORKLOAD,
                                 config=CONFIG, bound="roofline")


class TestSearchWithCriticalPathBound:
    @pytest.fixture(scope="class")
    def searches(self):
        exhaustive, _ = search_partitionings(
            COMM_BOUND_MACHINE, COMM_BOUND_WORKLOAD, config=CONFIG,
            prune=False, top_k=3,
        )
        occupancy, occupancy_stats = search_partitionings(
            COMM_BOUND_MACHINE, COMM_BOUND_WORKLOAD, config=CONFIG,
            bound=BOUND_OCCUPANCY, top_k=3,
        )
        critical, critical_stats = search_partitionings(
            COMM_BOUND_MACHINE, COMM_BOUND_WORKLOAD, config=CONFIG,
            bound=BOUND_CRITICAL_PATH, top_k=3,
        )
        return (exhaustive, occupancy, occupancy_stats, critical, critical_stats)

    def test_ranking_identical_across_bounds(self, searches):
        exhaustive, occupancy, _, critical, _ = searches
        assert _ranking(occupancy) == _ranking(exhaustive)
        assert _ranking(critical) == _ranking(exhaustive)

    def test_critical_path_simulates_strictly_fewer(self, searches):
        _, _, occupancy_stats, _, critical_stats = searches
        assert critical_stats.num_simulated < occupancy_stats.num_simulated
        assert critical_stats.num_pruned > occupancy_stats.num_pruned
        assert critical_stats.bound_name == BOUND_CRITICAL_PATH
        assert occupancy_stats.bound_name == BOUND_OCCUPANCY

    def test_ir_mode_still_falls_back_to_exhaustive(self):
        config = ExecutionConfig(mode=ExecutionMode.IR, simulate_only=True)
        _, stats = search_partitionings(
            COMM_BOUND_MACHINE, attention_workload(64, 32), config=config,
            replication_factors=[1], bound=BOUND_CRITICAL_PATH,
        )
        assert not stats.pruning_enabled
        assert stats.num_pruned == 0
