"""Unit tests for the LRU plan cache and its persistent JSON store."""

import json
import threading

import pytest

from repro.bench.schemes import scheme_by_name
from repro.bench.selector import PartitioningRecommendation
from repro.bench.workloads import Workload
from repro.planner.cache import (
    PlanCache,
    PlanEntry,
    recommendation_from_dict,
    recommendation_to_dict,
)


def make_entry(scheme: str = "column", percent: float = 50.0,
               fingerprint: str = None) -> PlanEntry:
    rec = PartitioningRecommendation(
        scheme=scheme_by_name(scheme),
        replication=(1, 1, 2),
        stationary="B",
        percent_of_peak=percent,
        simulated_time=1.0 / max(percent, 1e-9),
        memory_per_device=1 << 20,
    )
    return PlanEntry(recommendations=[rec], workload=Workload("w", 96, 80, 64),
                     num_simulated=5, num_pruned=7, fingerprint=fingerprint)


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = PlanCache(capacity=4)
        entry = make_entry()
        cache.put("k1", entry)
        assert cache.get("k1") is entry
        assert cache.get("missing") is None

    def test_evicts_least_recently_used(self):
        cache = PlanCache(capacity=2)
        cache.put("k1", make_entry())
        cache.put("k2", make_entry())
        cache.put("k3", make_entry())
        assert "k1" not in cache
        assert "k2" in cache and "k3" in cache
        assert cache.stats().evictions == 1

    def test_get_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.put("k1", make_entry())
        cache.put("k2", make_entry())
        cache.get("k1")  # k1 becomes most recent; k2 is now LRU
        cache.put("k3", make_entry())
        assert "k1" in cache
        assert "k2" not in cache

    def test_counters(self):
        cache = PlanCache(capacity=2)
        cache.put("k1", make_entry())
        cache.get("k1")
        cache.get("k1")
        cache.get("nope")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.puts) == (2, 1, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.size == 1 and stats.capacity == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_concurrent_puts_and_gets(self):
        cache = PlanCache(capacity=16)

        def worker(tag: int) -> None:
            for i in range(50):
                cache.put(f"k{tag}_{i % 8}", make_entry())
                cache.get(f"k{tag}_{i % 8}")

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 16


class TestSerialization:
    def test_recommendation_roundtrip(self):
        entry = make_entry()
        rec = entry.best
        restored = recommendation_from_dict(recommendation_to_dict(rec))
        assert restored.scheme.name == rec.scheme.name
        assert restored.replication == rec.replication
        assert restored.stationary == rec.stationary
        assert restored.percent_of_peak == rec.percent_of_peak
        assert restored.simulated_time == rec.simulated_time
        assert restored.memory_per_device == rec.memory_per_device

    def test_plan_entry_roundtrip_preserves_workload(self):
        entry = make_entry()
        restored = PlanEntry.from_dict(entry.to_dict())
        assert restored.workload == entry.workload
        assert restored.num_simulated == 5 and restored.num_pruned == 7


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        cache = PlanCache(capacity=8)
        cache.put("k1", make_entry("column", 60.0))
        cache.put("k2", make_entry("outer", 40.0))
        path = str(tmp_path / "store" / "plans.json")
        cache.save(path)

        fresh = PlanCache(capacity=8)
        assert fresh.load(path) == 2
        assert fresh.get("k1").best.scheme.name == "column"
        assert fresh.get("k2").best.scheme.name == "outer"
        assert fresh.get("k2").best.percent_of_peak == pytest.approx(40.0)

    def test_load_missing_file_is_cold_start(self, tmp_path):
        cache = PlanCache()
        assert cache.load(str(tmp_path / "nope.json")) == 0
        assert len(cache) == 0

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"version": 999, "entries": []}))
        assert PlanCache().load(str(path)) == 0

    def test_load_skips_unknown_scheme_entries(self, tmp_path):
        cache = PlanCache()
        cache.put("good", make_entry())
        path = str(tmp_path / "plans.json")
        cache.save(path)
        payload = json.loads(open(path).read())
        bad = json.loads(json.dumps(payload["entries"][0]))
        bad["key"] = "bad"
        bad["plan"]["recommendations"][0]["scheme"] = "from-the-future"
        payload["entries"].append(bad)
        open(path, "w").write(json.dumps(payload))

        fresh = PlanCache()
        assert fresh.load(path) == 1
        assert "good" in fresh and "bad" not in fresh

    def test_concurrent_saves_leave_a_valid_store(self, tmp_path):
        """Parallel save() calls (autosaving services) must never corrupt the store."""
        cache = PlanCache(capacity=8)
        cache.put("k", make_entry())
        path = str(tmp_path / "plans.json")
        errors = []

        def saver() -> None:
            try:
                for _ in range(20):
                    cache.save(path)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=saver) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert PlanCache().load(path) == 1

    def test_save_respects_lru_order(self, tmp_path):
        cache = PlanCache(capacity=8)
        cache.put("old", make_entry())
        cache.put("new", make_entry())
        cache.get("old")  # refresh: "new" is now least recent
        path = str(tmp_path / "plans.json")
        cache.save(path)
        keys = [item["key"] for item in json.loads(open(path).read())["entries"]]
        assert keys == ["new", "old"]


class TestFingerprintInvalidation:
    def test_stamped_entries_survive_matching_load(self, tmp_path):
        cache = PlanCache()
        cache.put("k", make_entry(fingerprint="model-v1"))
        path = str(tmp_path / "plans.json")
        cache.save(path)
        warm = PlanCache()
        assert warm.load(path, fingerprint="model-v1") == 1
        assert warm.get("k").fingerprint == "model-v1"

    def test_mismatched_fingerprint_invalidates_on_load(self, tmp_path):
        cache = PlanCache()
        cache.put("stale", make_entry(fingerprint="model-v1"))
        cache.put("unstamped", make_entry())
        path = str(tmp_path / "plans.json")
        cache.save(path)
        warm = PlanCache()
        assert warm.load(path, fingerprint="model-v2") == 0
        assert len(warm) == 0

    def test_load_without_expectation_accepts_everything(self, tmp_path):
        cache = PlanCache()
        cache.put("a", make_entry(fingerprint="model-v1"))
        cache.put("b", make_entry())
        path = str(tmp_path / "plans.json")
        cache.save(path)
        warm = PlanCache()
        assert warm.load(path) == 2

    def test_fingerprint_roundtrips_through_json(self):
        entry = make_entry(fingerprint="abcdef123456")
        assert PlanEntry.from_dict(entry.to_dict()).fingerprint == "abcdef123456"
        assert PlanEntry.from_dict(make_entry().to_dict()).fingerprint is None


class TestServiceFingerprint:
    def test_service_stamps_and_filters_by_cost_model(self, tmp_path):
        from repro.core.cost_model import CostModel
        from repro.planner.service import PlannerService
        from repro.topology.machines import uniform_system

        machine = uniform_system(4)
        path = str(tmp_path / "plans.json")
        workload = Workload("svc", 96, 80, 64)
        with PlannerService(machine, replication_factors=[1]) as service:
            response = service.plan(workload)
            assert not response.cache_hit
            key = service.signature_for(workload).key()
            assert service.cache.get(key).fingerprint == CostModel(machine).fingerprint()
            service.save_store(path)

        # Same cost model build: warm start serves from the store.
        with PlannerService(machine, replication_factors=[1],
                            store_path=path) as warm:
            assert warm.stats().warm_start_entries == 1
            assert warm.plan(workload).cache_hit

        # Different pricing build: every stored plan is stale.
        stale = PlannerService(machine, replication_factors=[1])
        stale.cost_model_fingerprint = "different-build"
        assert stale.cache.load(path, fingerprint="different-build") == 0
