"""Unit tests for the LRU plan cache and its persistent JSON store."""

import json
import threading

import pytest

from repro.bench.schemes import scheme_by_name
from repro.bench.selector import PartitioningRecommendation
from repro.bench.workloads import Workload
from repro.planner.cache import (
    PlanCache,
    PlanEntry,
    recommendation_from_dict,
    recommendation_to_dict,
)


def make_entry(scheme: str = "column", percent: float = 50.0,
               fingerprint: str = None) -> PlanEntry:
    rec = PartitioningRecommendation(
        scheme=scheme_by_name(scheme),
        replication=(1, 1, 2),
        stationary="B",
        percent_of_peak=percent,
        simulated_time=1.0 / max(percent, 1e-9),
        memory_per_device=1 << 20,
    )
    return PlanEntry(recommendations=[rec], workload=Workload("w", 96, 80, 64),
                     num_simulated=5, num_pruned=7, fingerprint=fingerprint)


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = PlanCache(capacity=4)
        entry = make_entry()
        cache.put("k1", entry)
        assert cache.get("k1") is entry
        assert cache.get("missing") is None

    def test_evicts_least_recently_used(self):
        cache = PlanCache(capacity=2)
        cache.put("k1", make_entry())
        cache.put("k2", make_entry())
        cache.put("k3", make_entry())
        assert "k1" not in cache
        assert "k2" in cache and "k3" in cache
        assert cache.stats().evictions == 1

    def test_get_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.put("k1", make_entry())
        cache.put("k2", make_entry())
        cache.get("k1")  # k1 becomes most recent; k2 is now LRU
        cache.put("k3", make_entry())
        assert "k1" in cache
        assert "k2" not in cache

    def test_counters(self):
        cache = PlanCache(capacity=2)
        cache.put("k1", make_entry())
        cache.get("k1")
        cache.get("k1")
        cache.get("nope")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.puts) == (2, 1, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.size == 1 and stats.capacity == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_concurrent_puts_and_gets(self):
        cache = PlanCache(capacity=16)

        def worker(tag: int) -> None:
            for i in range(50):
                cache.put(f"k{tag}_{i % 8}", make_entry())
                cache.get(f"k{tag}_{i % 8}")

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 16


class TestSerialization:
    def test_recommendation_roundtrip(self):
        entry = make_entry()
        rec = entry.best
        restored = recommendation_from_dict(recommendation_to_dict(rec))
        assert restored.scheme.name == rec.scheme.name
        assert restored.replication == rec.replication
        assert restored.stationary == rec.stationary
        assert restored.percent_of_peak == rec.percent_of_peak
        assert restored.simulated_time == rec.simulated_time
        assert restored.memory_per_device == rec.memory_per_device

    def test_plan_entry_roundtrip_preserves_workload(self):
        entry = make_entry()
        restored = PlanEntry.from_dict(entry.to_dict())
        assert restored.workload == entry.workload
        assert restored.num_simulated == 5 and restored.num_pruned == 7


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        cache = PlanCache(capacity=8)
        cache.put("k1", make_entry("column", 60.0))
        cache.put("k2", make_entry("outer", 40.0))
        path = str(tmp_path / "store" / "plans.json")
        cache.save(path)

        fresh = PlanCache(capacity=8)
        assert fresh.load(path) == 2
        assert fresh.get("k1").best.scheme.name == "column"
        assert fresh.get("k2").best.scheme.name == "outer"
        assert fresh.get("k2").best.percent_of_peak == pytest.approx(40.0)

    def test_load_missing_file_is_cold_start(self, tmp_path):
        cache = PlanCache()
        assert cache.load(str(tmp_path / "nope.json")) == 0
        assert len(cache) == 0

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"version": 999, "entries": []}))
        assert PlanCache().load(str(path)) == 0

    def test_load_skips_unknown_scheme_entries(self, tmp_path):
        cache = PlanCache()
        cache.put("good", make_entry())
        path = str(tmp_path / "plans.json")
        cache.save(path)
        payload = json.loads(open(path).read())
        bad = json.loads(json.dumps(payload["entries"][0]))
        bad["key"] = "bad"
        bad["plan"]["recommendations"][0]["scheme"] = "from-the-future"
        payload["entries"].append(bad)
        open(path, "w").write(json.dumps(payload))

        fresh = PlanCache()
        assert fresh.load(path) == 1
        assert "good" in fresh and "bad" not in fresh

    def test_concurrent_saves_leave_a_valid_store(self, tmp_path):
        """Parallel save() calls (autosaving services) must never corrupt the store."""
        cache = PlanCache(capacity=8)
        cache.put("k", make_entry())
        path = str(tmp_path / "plans.json")
        errors = []

        def saver() -> None:
            try:
                for _ in range(20):
                    cache.save(path)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=saver) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert PlanCache().load(path) == 1

    def test_save_respects_lru_order(self, tmp_path):
        cache = PlanCache(capacity=8)
        cache.put("old", make_entry())
        cache.put("new", make_entry())
        cache.get("old")  # refresh: "new" is now least recent
        path = str(tmp_path / "plans.json")
        cache.save(path)
        keys = [item["key"] for item in json.loads(open(path).read())["entries"]]
        assert keys == ["new", "old"]


class TestFingerprintInvalidation:
    def test_stamped_entries_survive_matching_load(self, tmp_path):
        cache = PlanCache()
        cache.put("k", make_entry(fingerprint="model-v1"))
        path = str(tmp_path / "plans.json")
        cache.save(path)
        warm = PlanCache()
        assert warm.load(path, fingerprint="model-v1") == 1
        assert warm.get("k").fingerprint == "model-v1"

    def test_mismatched_fingerprint_invalidates_on_load(self, tmp_path):
        cache = PlanCache()
        cache.put("stale", make_entry(fingerprint="model-v1"))
        cache.put("unstamped", make_entry())
        path = str(tmp_path / "plans.json")
        cache.save(path)
        warm = PlanCache()
        assert warm.load(path, fingerprint="model-v2") == 0
        assert len(warm) == 0

    def test_load_without_expectation_accepts_everything(self, tmp_path):
        cache = PlanCache()
        cache.put("a", make_entry(fingerprint="model-v1"))
        cache.put("b", make_entry())
        path = str(tmp_path / "plans.json")
        cache.save(path)
        warm = PlanCache()
        assert warm.load(path) == 2

    def test_fingerprint_roundtrips_through_json(self):
        entry = make_entry(fingerprint="abcdef123456")
        assert PlanEntry.from_dict(entry.to_dict()).fingerprint == "abcdef123456"
        assert PlanEntry.from_dict(make_entry().to_dict()).fingerprint is None


class TestServiceFingerprint:
    def test_service_stamps_and_filters_by_cost_model(self, tmp_path):
        from repro.core.cost_model import CostModel
        from repro.planner.service import PlannerService
        from repro.topology.machines import uniform_system

        machine = uniform_system(4)
        path = str(tmp_path / "plans.json")
        workload = Workload("svc", 96, 80, 64)
        with PlannerService(machine, replication_factors=[1]) as service:
            response = service.plan(workload)
            assert not response.cache_hit
            key = service.signature_for(workload).key()
            assert service.cache.get(key).fingerprint == CostModel(machine).fingerprint()
            service.save_store(path)

        # Same cost model build: warm start serves from the store.
        with PlannerService(machine, replication_factors=[1],
                            store_path=path) as warm:
            assert warm.stats().warm_start_entries == 1
            assert warm.plan(workload).cache_hit

        # Different pricing build: every stored plan is stale.
        stale = PlannerService(machine, replication_factors=[1])
        stale.cost_model_fingerprint = "different-build"
        assert stale.cache.load(path, fingerprint="different-build") == 0


class FakeClock:
    """Deterministic injectable clock for TTL tests."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBoundedStore:
    def test_max_bytes_evicts_lru(self):
        from repro.planner.cache import entry_size_bytes

        entry = make_entry()
        size = entry_size_bytes(entry)
        cache = PlanCache(capacity=100, max_bytes=3 * size)
        for i in range(4):
            cache.put(f"k{i}", make_entry())
        assert "k0" not in cache  # LRU went first; byte budget holds 3
        assert [f"k{i}" in cache for i in range(1, 4)] == [True, True, True]
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.total_bytes <= stats.max_bytes == 3 * size

    def test_single_oversized_entry_is_admitted_alone(self):
        cache = PlanCache(capacity=100, max_bytes=1)
        cache.put("big", make_entry())
        assert "big" in cache and len(cache) == 1

    def test_total_bytes_tracks_replacement(self):
        cache = PlanCache(capacity=4)
        cache.put("k", make_entry("column"))
        first = cache.stats().total_bytes
        cache.put("k", make_entry("outer"))
        assert len(cache) == 1
        assert cache.stats().total_bytes == pytest.approx(first, rel=0.2)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(max_bytes=0)
        with pytest.raises(ValueError):
            PlanCache(ttl_seconds=0)

    def test_ttl_expires_on_get(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_seconds=60.0, clock=clock)
        cache.put("k", make_entry())
        clock.advance(30)
        assert cache.get("k") is not None
        clock.advance(31)  # 61s old now
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.misses == 1 and stats.size == 0

    def test_contains_treats_expired_as_absent(self):
        clock = FakeClock()
        cache = PlanCache(ttl_seconds=10.0, clock=clock)
        cache.put("k", make_entry())
        assert "k" in cache
        clock.advance(11)
        assert "k" not in cache

    def test_prune_expired_drops_eagerly(self):
        clock = FakeClock()
        cache = PlanCache(ttl_seconds=10.0, clock=clock)
        cache.put("old", make_entry())
        clock.advance(6)
        cache.put("young", make_entry())
        clock.advance(5)  # old is 11s, young is 5s
        assert cache.prune_expired() == 1
        assert "old" not in cache and "young" in cache
        assert cache.stats().expirations == 1


class TestStoreV3:
    def test_lru_order_survives_save_load(self, tmp_path):
        cache = PlanCache(capacity=8)
        for key in ("a", "b", "c"):
            cache.put(key, make_entry())
        cache.get("a")  # recency now: b, c, a
        path = str(tmp_path / "plans.json")
        cache.save(path)

        fresh = PlanCache(capacity=8)
        assert fresh.load(path) == 3
        assert fresh.keys() == ["b", "c", "a"]
        fresh.put("d", make_entry())
        fresh.capacity = 3
        fresh.put("e", make_entry())  # evicts down to 3: LRU b, then c go
        assert "b" not in fresh
        assert fresh.keys() == ["a", "d", "e"]

    def test_created_at_survives_roundtrip_and_expires(self, tmp_path):
        clock = FakeClock(now=5000.0)
        cache = PlanCache(ttl_seconds=100.0, clock=clock)
        cache.put("old", make_entry())
        clock.advance(80)
        cache.put("young", make_entry())
        path = str(tmp_path / "plans.json")
        cache.save(path)

        clock.advance(30)  # old is 110s (expired), young is 30s
        warm = PlanCache(ttl_seconds=100.0, clock=clock)
        assert warm.load(path) == 1
        assert "young" in warm and "old" not in warm
        assert warm.stats().expirations == 1

    def test_store_is_version_3_with_timestamps(self, tmp_path):
        from repro.planner.cache import STORE_VERSION

        cache = PlanCache()
        cache.put("k", make_entry())
        path = str(tmp_path / "plans.json")
        cache.save(path)
        payload = json.loads(open(path).read())
        assert payload["version"] == STORE_VERSION == 3
        assert all(isinstance(item["created_at"], float) for item in payload["entries"])

    def test_v2_store_migrates_with_load_time_stamp(self, tmp_path):
        clock = FakeClock(now=7777.0)
        cache = PlanCache()
        cache.put("k", make_entry())
        path = str(tmp_path / "plans.json")
        cache.save(path)
        payload = json.loads(open(path).read())
        payload["version"] = 2
        for item in payload["entries"]:
            del item["created_at"]
            assert "plan" in item  # v2 layout otherwise identical
        open(path, "w").write(json.dumps(payload))

        warm = PlanCache(ttl_seconds=100.0, clock=clock)
        assert warm.load(path) == 1  # migrated, stamped at load time
        clock.advance(50)
        assert "k" in warm
        clock.advance(51)
        assert "k" not in warm

    def test_v1_store_still_rejected(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({"version": 1, "entries": []}))
        assert PlanCache().load(str(path)) == 0

    def test_load_respects_byte_budget(self, tmp_path):
        from repro.planner.cache import entry_size_bytes

        size = entry_size_bytes(make_entry())
        cache = PlanCache(capacity=100)
        for i in range(5):
            cache.put(f"k{i}", make_entry())
        path = str(tmp_path / "plans.json")
        cache.save(path)

        small = PlanCache(capacity=100, max_bytes=2 * size)
        assert small.load(path) == 5  # all parsed; bounds applied as they merge
        assert len(small) == 2
        assert small.keys() == ["k3", "k4"]  # the two most recent survive


class TestTrafficWeightedEviction:
    """Rollup weights steer eviction; without them the cache is pure LRU."""

    def _pressured_cache(self, clock=None):
        from repro.planner.cache import entry_size_bytes

        size = entry_size_bytes(make_entry())
        return PlanCache(capacity=100, max_bytes=3 * size,
                         clock=clock or FakeClock())

    def test_hot_but_old_outlives_cold_but_recent_under_byte_pressure(self):
        clock = FakeClock()
        cache = self._pressured_cache(clock)
        cache.put("hot", make_entry())   # oldest — pure LRU would evict it
        clock.advance(100)
        cache.put("cold1", make_entry())
        clock.advance(1)
        cache.put("cold2", make_entry())
        cache.set_traffic_weights({"hot": 40.0, "cold2": 2.0})
        clock.advance(1)
        cache.put("new", make_entry())   # byte budget forces one eviction
        assert "hot" in cache            # heavy traffic spared the LRU head
        assert "cold1" not in cache      # unweighted (0.0) went instead
        assert "cold2" in cache and "new" in cache
        assert cache.entry_ages()["hot"] == pytest.approx(102.0)

    def test_without_weights_the_same_sequence_is_pure_lru(self):
        cache = self._pressured_cache()
        for key in ("hot", "cold1", "cold2"):
            cache.put(key, make_entry())
        cache.put("new", make_entry())
        assert "hot" not in cache        # LRU head goes first, as always
        assert all(key in cache for key in ("cold1", "cold2", "new"))

    def test_ties_break_lru_and_weights_clear_back_to_lru(self):
        cache = self._pressured_cache()
        for key in ("a", "b", "c"):
            cache.put(key, make_entry())
        cache.set_traffic_weights({"a": 5.0, "b": 5.0, "c": 5.0})
        cache.put("d", make_entry())
        assert "a" not in cache          # equal weights: oldest goes
        cache.set_traffic_weights(None)
        assert cache.traffic_weights is None
        cache.put("e", make_entry())
        assert "b" not in cache          # pure LRU restored

    def test_fresh_insert_is_always_admitted(self):
        cache = self._pressured_cache()
        for key in ("a", "b", "c"):
            cache.put(key, make_entry())
        # The new key is the coldest by weight, yet must not evict itself.
        cache.set_traffic_weights({"a": 9.0, "b": 9.0, "c": 9.0})
        cache.put("new", make_entry())
        assert "new" in cache
        assert "a" not in cache

    def test_weights_install_copies(self):
        cache = PlanCache(capacity=4)
        weights = {"k": 1.0}
        cache.set_traffic_weights(weights)
        weights["k"] = 99.0
        assert cache.traffic_weights == {"k": 1.0}

    def test_cache_metrics_track_traffic(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cache = PlanCache(capacity=2, metrics=registry)
        cache.put("k1", make_entry())
        cache.get("k1")
        cache.get("nope")
        cache.put("k2", make_entry())
        cache.put("k3", make_entry())  # evicts k1
        snap = registry.snapshot()
        counters = snap["counters"]
        assert counters['repro_plan_cache_lookups_total{result="hit"}'] == 1.0
        assert counters['repro_plan_cache_lookups_total{result="miss"}'] == 1.0
        assert counters["repro_plan_cache_puts_total"] == 3.0
        assert counters["repro_plan_cache_evictions_total"] == 1.0
        assert snap["gauges"]["repro_plan_cache_entries"] == 2.0
        assert snap["gauges"]["repro_plan_cache_bytes"] > 0.0


class TestServiceBounds:
    def test_service_passes_bounds_through(self):
        from repro.planner.service import PlannerService
        from repro.topology.machines import uniform_system

        service = PlannerService(uniform_system(4), cache_capacity=7,
                                 cache_max_bytes=1 << 20, cache_ttl_seconds=3600.0)
        stats = service.cache_stats()
        assert stats.capacity == 7
        assert stats.max_bytes == 1 << 20
        assert stats.ttl_seconds == 3600.0


class TestGraceWindow:
    class Clock:
        def __init__(self):
            self.now = 1000.0

        def __call__(self):
            return self.now

    def test_fresh_entry_serves_normally(self):
        clock = self.Clock()
        cache = PlanCache(ttl_seconds=10.0, grace_seconds=30.0, clock=clock)
        cache.put("k", make_entry())
        clock.now += 5.0
        entry, age, stale = cache.get_for_serving("k")
        assert entry is not None and not stale
        assert age == pytest.approx(5.0)
        stats = cache.stats()
        assert stats.hits == 1 and stats.stale_serves == 0

    def test_expired_in_grace_serves_stale(self):
        clock = self.Clock()
        cache = PlanCache(ttl_seconds=10.0, grace_seconds=30.0, clock=clock)
        cache.put("k", make_entry())
        clock.now += 25.0  # 15s past TTL, inside the 30s grace
        entry, age, stale = cache.get_for_serving("k")
        assert entry is not None and stale
        assert age == pytest.approx(25.0)
        stats = cache.stats()
        assert stats.hits == 1 and stats.stale_serves == 1
        # The expired entry still reads as absent through __contains__ so
        # freshness checks (and put-if-missing logic) treat it as gone.
        assert "k" not in cache

    def test_past_grace_is_dropped(self):
        clock = self.Clock()
        cache = PlanCache(ttl_seconds=10.0, grace_seconds=30.0, clock=clock)
        cache.put("k", make_entry())
        clock.now += 45.0  # past TTL + grace
        assert cache.get_for_serving("k") is None
        stats = cache.stats()
        assert stats.misses == 1 and stats.expirations == 1

    def test_no_grace_expiry_is_a_miss(self):
        clock = self.Clock()
        cache = PlanCache(ttl_seconds=10.0, clock=clock)
        cache.put("k", make_entry())
        clock.now += 11.0
        assert cache.get_for_serving("k") is None

    def test_missing_key_is_none(self):
        assert PlanCache().get_for_serving("nope") is None

    def test_invalidate(self):
        cache = PlanCache()
        cache.put("k", make_entry())
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert "k" not in cache
        stats = cache.stats()
        assert stats.invalidations == 1
        # Invalidation is bookkeeping, not traffic: no hit/miss accounting.
        assert stats.hits == 0 and stats.misses == 0

    def test_grace_requires_positive_value(self):
        with pytest.raises(ValueError):
            PlanCache(grace_seconds=0.0)
        with pytest.raises(ValueError):
            PlanCache(grace_seconds=-1.0)

    def test_stats_reports_grace(self):
        assert PlanCache(grace_seconds=5.0).stats().grace_seconds == 5.0
        assert PlanCache().stats().grace_seconds is None
