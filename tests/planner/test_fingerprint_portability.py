"""Cross-fingerprint plan portability: seeds speed search, never change it.

The contract under test: a plan computed on one machine fingerprint may be
imported by a service for a *similar* machine (same portability profile,
i.e. same device count) only as a branch-and-bound **seed** — an incumbent
that tightens the prune threshold early.  The served recommendations must
be exactly what a cold search computes (property-tested over perturbed
machines), foreign plans must never be served directly (no stale-plan
leaks, no phantom cache hits), and incompatible fingerprints (different
device counts) must load nothing at all.
"""

import dataclasses
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.workloads import Workload
from repro.planner import (
    PlannerService,
    SignatureFactory,
    load_portable_seeds,
    machine_fingerprint,
    machine_portability_profile,
    portable_plan_key,
    search_partitionings,
)
from repro.topology.machines import uniform_system

BASE_MACHINE = uniform_system(2)
SERVICE_OPTIONS = {"replication_factors": [1]}


def make_workload(m=192, n=128, k=96):
    return Workload(f"w{m}x{n}x{k}", m, n, k)


def perturbed(machine, *, flops_scale=1.0, link_scale=1.0, hbm_scale=1.0):
    """The same topology with scaled hardware rates — a sibling machine."""
    return dataclasses.replace(
        machine,
        name=f"{machine.name}-x{flops_scale}-{link_scale}-{hbm_scale}",
        flops_peak=machine.flops_peak * flops_scale,
        device_link_bandwidth=machine.device_link_bandwidth * link_scale,
        memory_bandwidth=machine.memory_bandwidth * hbm_scale)


def recommendation_tuples(recommendations):
    return [(r.scheme.name, tuple(r.replication), r.stationary,
             r.simulated_time, r.percent_of_peak) for r in recommendations]


@pytest.fixture(scope="module")
def donor_store(tmp_path_factory):
    """A plan store written by the base machine (the seed donor)."""
    path = str(tmp_path_factory.mktemp("portable") / "plans.json")
    with PlannerService(BASE_MACHINE, store_path=path,
                       **SERVICE_OPTIONS) as service:
        service.plan(make_workload(), top_k=2)
        service.plan(make_workload(320, 256, 128))
        service.save_store()
    return path


class TestPortabilityPrimitives:
    def test_profile_ignores_rates_but_not_device_count(self):
        base = machine_portability_profile(BASE_MACHINE)
        assert machine_portability_profile(
            perturbed(BASE_MACHINE, flops_scale=2.0, link_scale=0.5)) == base
        assert machine_portability_profile(uniform_system(4)) != base

    def test_fingerprint_still_separates_perturbed_machines(self):
        # Portability profiles deliberately collapse what fingerprints keep
        # apart: cache identity stays exact, only seeding is shared.
        sibling = perturbed(BASE_MACHINE, flops_scale=1.5)
        assert (machine_fingerprint(sibling)
                != machine_fingerprint(BASE_MACHINE))
        assert (machine_portability_profile(sibling)
                == machine_portability_profile(BASE_MACHINE))

    def test_portable_plan_key_is_shape_and_structure_only(self):
        dense = make_workload()
        assert portable_plan_key(dense) == "192x128x96|dense"
        renamed = Workload("other-name", dense.m, dense.n, dense.k)
        assert portable_plan_key(renamed) == portable_plan_key(dense)
        assert portable_plan_key(make_workload(64, 64, 64)) != \
            portable_plan_key(dense)

    def test_load_portable_seeds_reads_matching_profiles_only(self,
                                                              donor_store):
        profile = machine_portability_profile(BASE_MACHINE)
        seeds = load_portable_seeds(donor_store, profile)
        assert len(seeds) == 2  # one portable key per donor workload
        for specs in seeds.values():
            assert specs  # each carries at least the donor's winner
            for scheme_name, replication, stationary in specs:
                assert isinstance(scheme_name, str)
                assert len(replication) == 3
                assert stationary in ("A", "B", "C")
        # A different device count shares nothing.
        assert load_portable_seeds(
            donor_store, machine_portability_profile(uniform_system(4))) == {}

    def test_load_portable_seeds_tolerates_missing_and_malformed(self,
                                                                 tmp_path):
        profile = machine_portability_profile(BASE_MACHINE)
        assert load_portable_seeds(str(tmp_path / "absent.json"),
                                   profile) == {}
        garbled = tmp_path / "garbled.json"
        garbled.write_text("not json{")
        assert load_portable_seeds(str(garbled), profile) == {}

    def test_graph_entries_are_excluded_from_seeding(self, donor_store,
                                                     tmp_path):
        # Stamp a graph-plan marker onto a donor entry: joint graph plans
        # are machine-coupled through reshard costs and must not seed
        # single-op searches.
        payload = json.loads(open(donor_store).read())
        for item in payload["entries"]:
            item["plan"] = dict(item.get("plan") or {}, kind="graph_plan")
        doctored = tmp_path / "graphs.json"
        doctored.write_text(json.dumps(payload))
        assert load_portable_seeds(
            str(doctored), machine_portability_profile(BASE_MACHINE)) == {}


class TestSignatureFactoryParity:
    """Client-side keys must be byte-identical to server-side identities."""

    def test_problem_keys_match_the_service(self):
        factory = SignatureFactory(BASE_MACHINE, **SERVICE_OPTIONS)
        with PlannerService(BASE_MACHINE, **SERVICE_OPTIONS) as service:
            for workload in (make_workload(), make_workload(320, 256, 128)):
                assert (factory.signature_for(workload).key()
                        == service.signature_for(workload).key())
                assert (factory.signature_for(workload, top_k=3).key()
                        == service.signature_for(workload, top_k=3).key())

    def test_graph_keys_match_the_service(self):
        from repro.core.graph import mlp_chain

        factory = SignatureFactory(BASE_MACHINE, **SERVICE_OPTIONS)
        graph = mlp_chain(96, 64)
        with PlannerService(BASE_MACHINE, **SERVICE_OPTIONS) as service:
            assert (factory.graph_signature_for(graph).key()
                    == service.plan_graph(graph).signature.key())

    def test_serving_only_options_are_ignored(self):
        baseline = SignatureFactory(BASE_MACHINE, **SERVICE_OPTIONS)
        tolerant = SignatureFactory(
            BASE_MACHINE, store_path="/tmp/x.json", autosave=True,
            cache_capacity=7, num_threads=3, **SERVICE_OPTIONS)
        workload = make_workload()
        assert (tolerant.signature_for(workload).key()
                == baseline.signature_for(workload).key())


class TestSeededSearchExactness:
    def test_seeding_never_changes_the_ranking(self):
        workload = make_workload()
        cold, cold_stats = search_partitionings(
            BASE_MACHINE, workload, top_k=3, replication_factors=[1])
        seeds = [(r.scheme.name, tuple(r.replication), r.stationary)
                 for r in cold]
        seeded, seeded_stats = search_partitionings(
            BASE_MACHINE, workload, top_k=3, replication_factors=[1],
            seed_candidates=seeds)
        assert recommendation_tuples(seeded) == recommendation_tuples(cold)
        assert seeded_stats.num_seeded == len(seeds)
        # Seeds are simulated up front, never double-simulated later.
        assert seeded_stats.num_simulated <= cold_stats.num_simulated \
            + len(seeds)

    def test_unknown_seed_specs_are_ignored(self):
        workload = make_workload()
        cold, _ = search_partitionings(
            BASE_MACHINE, workload, top_k=2, replication_factors=[1])
        seeded, stats = search_partitionings(
            BASE_MACHINE, workload, top_k=2, replication_factors=[1],
            seed_candidates=[("no-such-scheme", (1, 2, 3), "A")])
        assert recommendation_tuples(seeded) == recommendation_tuples(cold)
        assert stats.num_seeded == 0

    @given(flops=st.floats(0.25, 4.0), link=st.floats(0.25, 4.0),
           hbm=st.floats(0.5, 2.0))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_donor_seeds_are_exact_on_perturbed_machines(self, flops, link,
                                                         hbm):
        # The donor's winner is just an incumbent on the sibling machine —
        # whatever the sibling's own cost model ranks first must win, seeded
        # or not, for any rate perturbation.
        sibling = perturbed(BASE_MACHINE, flops_scale=flops, link_scale=link,
                            hbm_scale=hbm)
        workload = make_workload()
        cold, _ = search_partitionings(sibling, workload, top_k=2,
                                       replication_factors=[1])
        donor, _ = search_partitionings(BASE_MACHINE, workload, top_k=2,
                                        replication_factors=[1])
        seeds = [(r.scheme.name, tuple(r.replication), r.stationary)
                 for r in donor]
        seeded, _ = search_partitionings(sibling, workload, top_k=2,
                                         replication_factors=[1],
                                         seed_candidates=seeds)
        assert recommendation_tuples(seeded) == recommendation_tuples(cold)


class TestServicePortability:
    def test_sibling_service_seeds_and_matches_cold_search(self, donor_store):
        sibling = perturbed(BASE_MACHINE, flops_scale=1.5, link_scale=0.75)
        workload = make_workload()
        with PlannerService(sibling, **SERVICE_OPTIONS) as cold_service:
            cold = cold_service.plan(workload, top_k=2)
        with PlannerService(sibling, portable_store_paths=[donor_store],
                            **SERVICE_OPTIONS) as service:
            assert service.stats().portable_seeds_loaded >= 2
            response = service.plan(workload, top_k=2)
            # Seeded, but not served from the foreign store: the answer is
            # a fresh search on the sibling's own cost model.
            assert not response.cache_hit
            assert service.stats().portable_seeded == 1
            assert (recommendation_tuples(response.recommendations)
                    == recommendation_tuples(cold.recommendations))

    def test_incompatible_fingerprints_never_leak_plans(self, donor_store):
        foreign = uniform_system(4)  # different device count
        workload = make_workload()
        with PlannerService(foreign, portable_store_paths=[donor_store],
                            **SERVICE_OPTIONS) as service:
            assert service.stats().portable_seeds_loaded == 0
            response = service.plan(workload)
            assert not response.cache_hit
            assert service.stats().portable_seeded == 0
            # Sanity: the answer is a genuine 4-device plan, not the
            # donor's 2-device one replayed.
            with PlannerService(foreign, **SERVICE_OPTIONS) as reference:
                assert (recommendation_tuples(response.recommendations)
                        == recommendation_tuples(
                            reference.plan(workload).recommendations))

    def test_exact_fingerprint_service_is_bit_identical_with_seeds(self,
                                                                   donor_store):
        # Same machine as the donor: seeds load (profiles match), but the
        # answers must be indistinguishable from an unseeded service.
        workload = make_workload()
        with PlannerService(BASE_MACHINE, **SERVICE_OPTIONS) as plain:
            expected = plain.plan(workload, top_k=2)
        with PlannerService(BASE_MACHINE, portable_store_paths=[donor_store],
                            **SERVICE_OPTIONS) as service:
            got = service.plan(workload, top_k=2)
            assert not got.cache_hit
            assert (recommendation_tuples(got.recommendations)
                    == recommendation_tuples(expected.recommendations))

    def test_import_portable_plans_is_callable_at_runtime(self, donor_store):
        sibling = perturbed(BASE_MACHINE, flops_scale=0.5)
        with PlannerService(sibling, **SERVICE_OPTIONS) as service:
            assert service.stats().portable_seeds_loaded == 0
            imported = service.import_portable_plans(donor_store)
            assert imported >= 2
            assert service.stats().portable_seeds_loaded == imported
            response = service.plan(make_workload())
            assert not response.cache_hit
            assert service.stats().portable_seeded == 1

    def test_second_plan_for_same_signature_hits_the_local_cache(self,
                                                                 donor_store):
        sibling = perturbed(BASE_MACHINE, flops_scale=2.0)
        workload = make_workload()
        with PlannerService(sibling, portable_store_paths=[donor_store],
                            **SERVICE_OPTIONS) as service:
            assert not service.plan(workload).cache_hit
            warm = service.plan(workload)
            assert warm.cache_hit  # locally computed entries cache normally
            assert service.stats().portable_seeded == 1  # seeded only once
