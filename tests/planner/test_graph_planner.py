"""Joint graph planner: edge pricing, solvers, cache entries, and serving."""

import pytest

from repro.core.graph import GraphEdge, GraphOp, OpGraph, matmul_chain, mlp_chain
from repro.dist.matrix import DistributedMatrix
from repro.dist.redistribute import redistribution_cost
from repro.planner import PlannerService
from repro.planner.cache import PlanCache, PlanEntry, decode_entry
from repro.planner.graph import (
    DEFAULT_LATTICE_SIZE,
    GraphPlanEntry,
    OpLattice,
    _solve_chain_dp,
    _solve_dag_branch_and_bound,
    assignment_timing,
    build_edge_tables,
    candidate_layout,
    exhaustive_joint_plan,
    op_workload,
    plan_graph_layouts,
)
from repro.planner.search import search_partitionings
from repro.runtime.runtime import Runtime
from repro.topology.machines import uniform_system

MACHINE = uniform_system(4)
#: Pin replication so layout transitions differ (full replication would make
#: every reshard the same broadcast and flatten the edge tables).
SEARCH_OPTIONS = {"replication_factors": [1]}


def chain_graph():
    return matmul_chain("chain3", (GraphOp("c1", 256, 64, 128),
                                   GraphOp("c2", 256, 128, 64),
                                   GraphOp("c3", 256, 32, 128)))


def diamond_graph():
    ops = (GraphOp("d0", 128, 128, 64), GraphOp("d1", 128, 128, 128),
           GraphOp("d2", 128, 96, 128), GraphOp("d3", 128, 96, 128))
    edges = (GraphEdge(0, 1, "A"), GraphEdge(0, 2, "A"),
             GraphEdge(1, 3, "A"), GraphEdge(2, 3, "B"))
    return OpGraph(name="diamond", ops=ops, edges=edges)


def lattices_for(graph, lattice_size=DEFAULT_LATTICE_SIZE):
    lattices = []
    for op in graph.ops:
        recs, _ = search_partitionings(MACHINE, op_workload(op),
                                       top_k=lattice_size, **SEARCH_OPTIONS)
        lattices.append(OpLattice(op_workload(op), tuple(recs)))
    return lattices


class TestEdgeTables:
    def test_entries_match_direct_redistribution_cost(self):
        """A DP transition weight is exactly the modelled reshard cost."""
        graph = chain_graph()
        lattices = lattices_for(graph)
        tables = build_edge_tables(MACHINE, graph, lattices)
        runtime = Runtime(machine=MACHINE)
        edge = graph.edges[0]
        src_lat, dst_lat = lattices[edge.src], lattices[edge.dst]
        shape = (src_lat.workload.m, src_lat.workload.n)
        for i, src_rec in enumerate(src_lat.recommendations):
            src_part, src_rep = candidate_layout(MACHINE, src_lat.workload,
                                                 src_rec, 2)
            for j, dst_rec in enumerate(dst_lat.recommendations):
                dst_part, dst_rep = candidate_layout(MACHINE, dst_lat.workload,
                                                     dst_rec, 0)
                matrix = DistributedMatrix.create(runtime, shape, src_part,
                                                  replication=src_rep,
                                                  materialize=False)
                cost = redistribution_cost(matrix, dst_part,
                                           replication=dst_rep)
                assert tables[0][i][j] == pytest.approx(
                    float(cost["modelled_time_s"]))

    def test_identical_layouts_price_to_zero(self):
        graph = matmul_chain("same", (GraphOp("s1", 128, 128, 128),
                                      GraphOp("s2", 128, 128, 128)))
        lattices = lattices_for(graph)
        tables = build_edge_tables(MACHINE, graph, lattices)
        src_lat, dst_lat = lattices[0], lattices[1]
        for i, src_rec in enumerate(src_lat.recommendations):
            src_layout = candidate_layout(MACHINE, src_lat.workload, src_rec, 2)
            for j, dst_rec in enumerate(dst_lat.recommendations):
                dst_layout = candidate_layout(MACHINE, dst_lat.workload,
                                              dst_rec, 0)
                if src_layout == dst_layout:
                    assert tables[0][i][j] == 0.0

    def test_tables_are_non_negative(self):
        graph = chain_graph()
        tables = build_edge_tables(MACHINE, graph, lattices_for(graph))
        assert all(value >= 0.0
                   for table in tables for row in table for value in row)


class TestSolvers:
    def test_chain_dp_matches_exhaustive(self):
        graph = chain_graph()
        lattices = lattices_for(graph)
        tables = build_edge_tables(MACHINE, graph, lattices)
        dp_assignment, dp_makespan = _solve_chain_dp(graph, lattices, tables)
        ex_assignment, ex_makespan = exhaustive_joint_plan(graph, lattices,
                                                           tables)
        assert dp_assignment == ex_assignment
        assert dp_makespan == pytest.approx(ex_makespan)

    def test_branch_and_bound_matches_exhaustive_on_dag(self):
        graph = diamond_graph()
        lattices = lattices_for(graph, lattice_size=3)
        tables = build_edge_tables(MACHINE, graph, lattices)
        bnb_assignment, bnb_makespan, expanded = _solve_dag_branch_and_bound(
            graph, lattices, tables)
        ex_assignment, ex_makespan = exhaustive_joint_plan(graph, lattices,
                                                           tables)
        assert bnb_assignment == ex_assignment
        assert bnb_makespan == pytest.approx(ex_makespan)
        assert expanded >= 1

    def test_solver_makespans_agree_with_assignment_timing(self):
        graph = chain_graph()
        lattices = lattices_for(graph)
        tables = build_edge_tables(MACHINE, graph, lattices)
        assignment, makespan = _solve_chain_dp(graph, lattices, tables)
        assert makespan == pytest.approx(
            assignment_timing(graph, lattices, tables, assignment).makespan)


class TestPlanGraphLayouts:
    def test_chain_uses_dp_and_never_loses_to_greedy(self):
        plan, stats = plan_graph_layouts(MACHINE, chain_graph(),
                                         **SEARCH_OPTIONS)
        assert plan.method == "chain_dp"
        assert plan.makespan <= plan.greedy_makespan
        assert plan.improvement >= 0.0
        assert len(plan.assignment) == len(plan.graph.ops)
        assert len(plan.recommendations) == len(plan.graph.ops)
        assert len(plan.edge_times) == len(plan.graph.edges)
        assert stats.num_simulated > 0

    def test_dag_uses_branch_and_bound(self):
        plan, _ = plan_graph_layouts(MACHINE, diamond_graph(),
                                     lattice_size=3, **SEARCH_OPTIONS)
        assert plan.method == "branch_and_bound"
        assert plan.makespan <= plan.greedy_makespan

    def test_makespan_consistent_with_parts(self):
        plan, _ = plan_graph_layouts(MACHINE, chain_graph(), **SEARCH_OPTIONS)
        lattices = lattices_for(plan.graph)
        tables = build_edge_tables(MACHINE, plan.graph, lattices)
        timing = assignment_timing(plan.graph, lattices, tables,
                                   plan.assignment)
        assert plan.makespan == pytest.approx(timing.makespan)
        assert plan.op_times == tuple(
            lattices[i].recommendations[plan.assignment[i]].simulated_time
            for i in range(len(plan.graph.ops)))

    def test_rejects_bad_lattice_size(self):
        with pytest.raises(ValueError):
            plan_graph_layouts(MACHINE, chain_graph(), lattice_size=0)

    def test_rejects_infeasible_memory_budget(self):
        with pytest.raises(ValueError, match="budget"):
            plan_graph_layouts(MACHINE, chain_graph(),
                               memory_budget_bytes=1.0, **SEARCH_OPTIONS)


class TestGraphPlanEntry:
    def plan(self):
        plan, stats = plan_graph_layouts(MACHINE, mlp_chain(96, 64),
                                         **SEARCH_OPTIONS)
        return GraphPlanEntry.from_plan(plan, num_simulated=stats.num_simulated,
                                        num_pruned=stats.num_pruned,
                                        fingerprint="fp-test")

    def test_round_trip(self):
        entry = self.plan()
        clone = GraphPlanEntry.from_dict(entry.to_dict())
        assert clone.graph == entry.graph
        assert clone.assignment == entry.assignment
        assert clone.makespan == pytest.approx(entry.makespan)
        assert clone.greedy_makespan == pytest.approx(entry.greedy_makespan)
        assert clone.method == entry.method
        assert clone.fingerprint == entry.fingerprint
        assert [r.plan_key() for r in clone.recommendations] == \
            [r.plan_key() for r in entry.recommendations]

    def test_decode_entry_dispatches_on_kind(self):
        entry = self.plan()
        decoded = decode_entry(entry.to_dict())
        assert isinstance(decoded, GraphPlanEntry)
        assert decoded.assignment == entry.assignment
        # Payloads without a kind stay plain PlanEntry...
        payload = entry.to_dict()
        payload.pop("kind")
        payload["workload"] = None
        plain = decode_entry(payload)
        assert type(plain) is PlanEntry
        # ...and unknown kinds are skipped (forward compatibility).
        payload["kind"] = "from-the-future"
        assert decode_entry(payload) is None

    def test_cache_save_load_round_trip(self, tmp_path):
        entry = self.plan()
        cache = PlanCache(capacity=8)
        cache.put("graph|k", entry)
        path = str(tmp_path / "plans.json")
        cache.save(path)
        fresh = PlanCache(capacity=8)
        assert fresh.load(path, fingerprint="fp-test") == 1
        loaded = fresh.get("graph|k")
        assert isinstance(loaded, GraphPlanEntry)
        assert loaded.assignment == entry.assignment
        assert loaded.makespan == pytest.approx(entry.makespan)
        assert loaded.graph == entry.graph


class TestServicePlanGraph:
    def test_cold_then_hit(self):
        with PlannerService(MACHINE, **SEARCH_OPTIONS) as service:
            graph = mlp_chain(96, 64)
            cold = service.plan_graph(graph)
            warm = service.plan_graph(graph)
        assert not cold.cache_hit and warm.cache_hit
        assert cold.assignment == warm.assignment
        assert cold.makespan == pytest.approx(warm.makespan)
        assert cold.method == warm.method
        assert cold.search_stats is not None and warm.search_stats is None
        assert [r.plan_key() for r in cold.recommendations] == \
            [r.plan_key() for r in warm.recommendations]

    def test_signature_ignores_display_names(self):
        with PlannerService(MACHINE, **SEARCH_OPTIONS) as service:
            ops = (GraphOp("a", 96, 256, 64), GraphOp("b", 96, 64, 256))
            renamed = (GraphOp("x", 96, 256, 64), GraphOp("y", 96, 64, 256))
            first = service.plan_graph(matmul_chain("mlp", ops))
            second = service.plan_graph(matmul_chain("other", renamed))
        assert not first.cache_hit and second.cache_hit
        assert first.signature.key() == second.signature.key()

    def test_lattice_size_is_part_of_the_key(self):
        with PlannerService(MACHINE, **SEARCH_OPTIONS) as service:
            graph = mlp_chain(96, 64)
            service.plan_graph(graph, lattice_size=2)
            other = service.plan_graph(graph, lattice_size=3)
        assert not other.cache_hit

    def test_graph_and_single_op_keys_never_collide(self):
        with PlannerService(MACHINE, **SEARCH_OPTIONS) as service:
            graph = mlp_chain(96, 64)
            key = service.graph_signature_for(graph).key()
            assert key.startswith("graph|")
            for op in graph.ops:
                assert service.signature_for(op_workload(op)).key() != key

    def test_warm_start_from_store(self, tmp_path):
        store = str(tmp_path / "store.json")
        graph = mlp_chain(96, 64)
        with PlannerService(MACHINE, store_path=store, autosave=True,
                            **SEARCH_OPTIONS) as service:
            first = service.plan_graph(graph)
        with PlannerService(MACHINE, store_path=store,
                            **SEARCH_OPTIONS) as fresh:
            assert fresh.stats().warm_start_entries >= 1
            served = fresh.plan_graph(graph)
        assert served.cache_hit
        assert served.assignment == first.assignment
        assert served.makespan == pytest.approx(first.makespan)
