"""Background refresher behaviour: staleness, prediction, drift, lifecycle."""

import threading
import time

import pytest

from repro.bench.workloads import Workload, moe_workload
from repro.core.structure import BlockSparse, even_spread_mask
from repro.planner import BackgroundRefresher, DriftTracker, PlannerService, TransitionTable
from repro.planner.refresh import KIND_PREWARM, KIND_STALE, KIND_TTL
from repro.topology.machines import uniform_system

MACHINE = uniform_system(4)
SMALL = Workload("small", 96, 80, 64)
OTHER = Workload("other", 512, 80, 64)


class FakeClock:
    """A manually advanced clock injectable into the service/cache."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def small_service(**kwargs) -> PlannerService:
    kwargs.setdefault("replication_factors", [1, 2])
    kwargs.setdefault("stationary_options", ("B", "C"))
    return PlannerService(MACHINE, **kwargs)


@pytest.fixture(autouse=True)
def no_thread_leaks():
    """Every test must leave the process with the threads it started with."""
    before = set(threading.enumerate())
    yield
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = [t for t in threading.enumerate()
                  if t not in before and t.is_alive()]
        if not leaked:
            return
        time.sleep(0.01)
    raise AssertionError(f"leaked threads: {[t.name for t in leaked]}")


class TestStaleWhileRevalidate:
    def test_expired_in_grace_serves_stale_then_refreshes(self):
        clock = FakeClock()
        with small_service(cache_ttl_seconds=10.0, cache_grace_seconds=60.0,
                           clock=clock) as service:
            refresher = BackgroundRefresher(service)
            first = service.plan(SMALL)
            assert not first.cache_hit and not first.stale

            clock.advance(15.0)  # past TTL, inside grace
            stale = service.plan(SMALL)
            assert stale.cache_hit and stale.stale
            assert stale.plan_age == pytest.approx(15.0)
            assert (stale.recommendation.describe()
                    == first.recommendation.describe())
            assert service.stats().stale_hits == 1
            assert refresher.stats().scheduled[KIND_STALE] >= 1

            executed = refresher.run_once()
            assert executed >= 1
            fresh = service.plan(SMALL)
            assert fresh.cache_hit and not fresh.stale
            assert fresh.plan_age == pytest.approx(0.0)
            assert service.stats().background_refreshes >= 1
            refresher.close()

    def test_past_grace_is_a_cold_plan_again(self):
        clock = FakeClock()
        with small_service(cache_ttl_seconds=10.0, cache_grace_seconds=5.0,
                           clock=clock) as service:
            service.plan(SMALL)
            clock.advance(16.0)  # past TTL + grace
            response = service.plan(SMALL)
            assert not response.cache_hit and not response.stale

    def test_without_grace_expiry_is_a_miss(self):
        clock = FakeClock()
        with small_service(cache_ttl_seconds=10.0, clock=clock) as service:
            service.plan(SMALL)
            clock.advance(15.0)
            response = service.plan(SMALL)
            assert not response.cache_hit and not response.stale

    def test_refresh_preserves_recommendations_exactly(self):
        clock = FakeClock()
        with small_service(cache_ttl_seconds=10.0, cache_grace_seconds=60.0,
                           clock=clock) as service:
            refresher = BackgroundRefresher(service)
            before = service.plan(SMALL, top_k=3)
            clock.advance(12.0)
            service.plan(SMALL, top_k=3)
            refresher.run_once()
            after = service.plan(SMALL, top_k=3)
            assert [r.describe() for r in after.recommendations] \
                == [r.describe() for r in before.recommendations]
            refresher.close()


class TestPreTTLRefresh:
    def test_entry_in_margin_window_is_refreshed_before_expiry(self):
        clock = FakeClock()
        with small_service(cache_ttl_seconds=10.0, clock=clock) as service:
            refresher = BackgroundRefresher(service, refresh_margin=0.5)
            service.plan(SMALL)
            clock.advance(6.0)  # age 6 > ttl * (1 - margin) = 5
            executed = refresher.run_once()
            assert executed == 1
            assert refresher.stats().scheduled[KIND_TTL] == 1
            response = service.plan(SMALL)
            assert response.cache_hit and not response.stale
            assert response.plan_age == pytest.approx(0.0)
            refresher.close()

    def test_young_entry_is_left_alone(self):
        clock = FakeClock()
        with small_service(cache_ttl_seconds=10.0, clock=clock) as service:
            refresher = BackgroundRefresher(service, refresh_margin=0.25)
            service.plan(SMALL)
            clock.advance(2.0)  # age 2 < threshold 7.5
            assert refresher.run_once() == 0
            refresher.close()

    def test_no_ttl_means_no_ttl_scheduling(self):
        with small_service() as service:
            refresher = BackgroundRefresher(service)
            service.plan(SMALL)
            assert refresher.run_once() == 0
            refresher.close()


class TestSingleFlightParity:
    @pytest.fixture
    def slow_search(self, monkeypatch):
        """Gate the module-level search so a leader can be held in flight."""
        import repro.planner.service as service_module

        release = threading.Event()
        entered = threading.Event()
        original = service_module.search_partitionings

        def gated(*args, **kwargs):
            entered.set()
            release.wait(timeout=10.0)
            return original(*args, **kwargs)

        monkeypatch.setattr(service_module, "search_partitionings", gated)
        yield entered, release
        release.set()

    def test_background_refresh_skips_when_foreground_leads(self, slow_search):
        entered, release = slow_search
        with small_service() as service:
            signature = service.signature_for(SMALL)
            foreground = threading.Thread(target=service.plan, args=(SMALL,))
            foreground.start()
            try:
                assert entered.wait(timeout=10.0)
                # The foreground leader holds the flight: refresh must skip
                # without running a second search.
                assert service.refresh(signature) is False
            finally:
                release.set()
                foreground.join(timeout=10.0)
            stats = service.stats()
            assert stats.background_refreshes == 0
            assert stats.plans_computed == 1

    def test_foreground_coalesces_onto_background_refresh(self, slow_search):
        entered, release = slow_search
        with small_service() as service:
            signature = service.signature_for(SMALL)
            results = {}

            def background():
                results["refreshed"] = service.refresh(signature)

            refresh_thread = threading.Thread(target=background)
            refresh_thread.start()
            response_box = {}
            plan_thread = threading.Thread(
                target=lambda: response_box.update(
                    response=service.plan(SMALL)))
            try:
                assert entered.wait(timeout=10.0)
                plan_thread.start()
                # Give the foreground request time to join the flight.
                time.sleep(0.05)
                release.set()
                plan_thread.join(timeout=10.0)
            finally:
                release.set()
                refresh_thread.join(timeout=10.0)
                if plan_thread.is_alive():  # pragma: no cover - cleanup
                    plan_thread.join(timeout=10.0)
            assert results["refreshed"] is True
            assert response_box["response"].coalesced
            stats = service.stats()
            assert stats.plans_computed == 1
            assert stats.background_refreshes == 1
            assert stats.coalesced_requests == 1


class TestTransitionTable:
    def test_predicts_most_frequent_successor_first(self):
        table = TransitionTable()
        for _ in range(3):
            table.observe("a", "b")
        table.observe("a", "c")
        assert table.predict("a") == ["b", "c"]

    def test_ties_break_on_ascending_key(self):
        table = TransitionTable()
        table.observe("a", "z")
        table.observe("a", "b")
        assert table.predict("a") == ["b", "z"]

    def test_self_transitions_are_not_predicted(self):
        table = TransitionTable()
        for _ in range(5):
            table.observe("a", "a")
        table.observe("a", "b")
        assert table.predict("a") == ["b"]

    def test_successor_bound_drops_lowest_count(self):
        table = TransitionTable(max_successors=2)
        for _ in range(3):
            table.observe("a", "x")
        for _ in range(2):
            table.observe("a", "y")
        table.observe("a", "z")  # evicts the weakest edge
        assert table.num_edges == 2
        assert table.predict("a", top_n=3) == ["x", "y"]

    def test_key_bound_evicts_least_recently_updated(self):
        table = TransitionTable(max_keys=2)
        table.observe("a", "x")
        table.observe("b", "x")
        table.observe("c", "x")
        assert table.predict("a") == []
        assert table.predict("b") == ["x"]
        assert table.predict("c") == ["x"]

    def test_unknown_key_predicts_nothing(self):
        assert TransitionTable().predict("never-seen") == []


class TestPrewarm:
    def test_observed_sequence_prewarms_likely_next(self):
        clock = FakeClock()
        with small_service(cache_ttl_seconds=10.0, clock=clock) as service:
            refresher = BackgroundRefresher(service)
            for _ in range(3):
                service.plan(SMALL)
                service.plan(OTHER)
            # Expire OTHER, then request SMALL: prediction SMALL -> OTHER
            # should re-plan OTHER off-path before traffic returns to it.
            other_key = service.signature_for(OTHER).key()
            service.cache.invalidate(other_key)
            service.plan(SMALL)
            executed = refresher.run_once()
            assert executed >= 1
            assert refresher.stats().scheduled[KIND_PREWARM] >= 1
            response = service.plan(OTHER)
            assert response.cache_hit
            refresher.close()

    def test_resident_prediction_is_not_reenqueued(self):
        with small_service() as service:
            refresher = BackgroundRefresher(service)
            service.plan(SMALL)
            service.plan(OTHER)
            service.plan(SMALL)
            assert refresher.run_once() == 0
            refresher.close()

    def test_prewarm_can_be_disabled(self):
        clock = FakeClock()
        with small_service(cache_ttl_seconds=10.0, clock=clock) as service:
            refresher = BackgroundRefresher(service, prewarm=False)
            for _ in range(2):
                service.plan(SMALL)
                service.plan(OTHER)
            service.cache.invalidate(service.signature_for(OTHER).key())
            service.plan(SMALL)
            assert refresher.run_once() == 0
            refresher.close()

    def test_feed_request_log_seeds_transitions(self, tmp_path):
        from repro.obs.reqlog import RequestLog, RequestRecord

        log_path = str(tmp_path / "requests.jsonl")
        with RequestLog(log_path) as log:
            for _ in range(2):
                log.append(RequestRecord(ts=1.0, signature="ka", workload="a",
                                         outcome="hit", plan_age=0.0, latency=0.0))
                log.append(RequestRecord(ts=2.0, signature="kb", workload="b",
                                         outcome="hit", plan_age=0.0, latency=0.0))
        with small_service() as service:
            refresher = BackgroundRefresher(service)
            consumed = refresher.feed_request_log(log_path)
            assert consumed == 4
            assert refresher.transitions.predict("ka") == ["kb"]
            refresher.close()


class TestDrift:
    def _moe(self, tokens: int) -> Workload:
        return moe_workload(4, 256, 256, 256, expert_tokens=[tokens // 4] * 4)

    def test_crossing_invalidates_old_bucket_and_plans_new(self):
        with small_service() as service:
            refresher = BackgroundRefresher(service)
            low = self._moe(400)
            high = self._moe(900)
            service.plan(low)
            low_key = service.signature_for(low).key()
            for _ in range(10):
                service.plan(high)
            refresher.run_once()
            stats = refresher.stats()
            assert stats.drift_invalidations == 1
            assert low_key not in service.cache
            # One crossing fires once: the planned bucket follows the level.
            refresher.run_once()
            assert refresher.stats().drift_invalidations == 1
            refresher.close()

    def test_lookahead_preplans_the_approaching_bucket(self):
        with small_service() as service:
            refresher = BackgroundRefresher(service, drift_alpha=0.3)
            for tokens in (600, 620, 640, 660, 680, 700):
                service.plan(self._moe(tokens))
            refresher.run_once()
            crossing = service.plan(self._moe(800))
            assert crossing.cache_hit
            refresher.close()

    def test_block_sparse_drift_metric(self):
        mask = even_spread_mask(4, 4, 8)
        workload = Workload("bs", 256, 256, 256,
                            structure=BlockSparse(block_k=64, block_n=64,
                                                  mask=mask))
        from repro.planner.refresh import _live_level
        assert _live_level(workload) == 8.0

    def test_dense_workloads_never_enter_the_tracker(self):
        with small_service() as service:
            refresher = BackgroundRefresher(service)
            service.plan(SMALL)
            assert refresher.drift is not None
            assert refresher.drift.num_families == 0
            refresher.close()

    def test_tracker_validation(self):
        with pytest.raises(ValueError):
            DriftTracker(alpha=0.0)
        with pytest.raises(ValueError):
            DriftTracker(lookahead=1.0)
        with pytest.raises(ValueError):
            DriftTracker(max_families=0)


class TestQueue:
    def test_overflow_drops_lowest_priority(self):
        with small_service() as service:
            refresher = BackgroundRefresher(service, max_queue=1)
            sig_a = service.signature_for(SMALL)
            sig_b = service.signature_for(OTHER)
            with refresher._lock:
                refresher._enqueue_locked(KIND_PREWARM, sig_b.key(), sig_b, 1)
                refresher._enqueue_locked(KIND_STALE, sig_a.key(), sig_a, 1)
            stats = refresher.stats()
            assert stats.dropped == 1
            assert stats.queue_depth == 1
            with refresher._lock:
                survivor = refresher._pop_task_locked()
            assert survivor.kind == KIND_STALE
            refresher.close()

    def test_duplicate_keys_are_deduplicated(self):
        with small_service() as service:
            refresher = BackgroundRefresher(service)
            sig = service.signature_for(SMALL)
            with refresher._lock:
                assert refresher._enqueue_locked(KIND_STALE, sig.key(), sig, 1)
                assert not refresher._enqueue_locked(KIND_STALE, sig.key(), sig, 1)
            assert refresher.stats().queue_depth == 1
            refresher.close()

    def test_constructor_validation(self):
        with small_service() as service:
            for bad in (dict(interval_seconds=0.0), dict(num_threads=0),
                        dict(max_queue=0), dict(refresh_margin=1.0)):
                with pytest.raises(ValueError):
                    BackgroundRefresher(service, **bad)


class TestLifecycle:
    def test_start_stop_idempotent_and_restartable(self):
        with small_service() as service:
            refresher = BackgroundRefresher(service, interval_seconds=0.05)
            assert not refresher.running
            refresher.start()
            refresher.start()  # idempotent
            assert refresher.running
            refresher.stop()
            refresher.stop()  # idempotent
            assert not refresher.running
            refresher.start()  # restartable after stop
            assert refresher.running
            refresher.close()
            assert not refresher.running

    def test_threads_drain_work_concurrently(self):
        clock = FakeClock()
        with small_service(cache_ttl_seconds=10.0, cache_grace_seconds=60.0,
                           clock=clock) as service:
            with BackgroundRefresher(service, interval_seconds=0.02,
                                     num_threads=2) as refresher:
                service.plan(SMALL)
                clock.advance(12.0)
                stale = service.plan(SMALL)
                assert stale.stale
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if refresher.stats().completed >= 1:
                        break
                    time.sleep(0.01)
                assert refresher.stats().completed >= 1
                fresh = service.plan(SMALL)
                assert fresh.cache_hit and not fresh.stale

    def test_inherited_refresher_counts_stopped_after_fork(self, monkeypatch):
        import repro.planner.refresh as refresh_module

        with small_service() as service:
            refresher = BackgroundRefresher(service, interval_seconds=0.05)
            refresher.start()
            assert refresher.running
            real_pid = refresh_module.os.getpid()
            monkeypatch.setattr(refresh_module.os, "getpid",
                                lambda: real_pid + 1)
            assert not refresher.running  # "the child" sees it stopped
            refresher.stop()  # must not try to join another process's threads
            monkeypatch.setattr(refresh_module.os, "getpid", lambda: real_pid)
            refresher.close()

    def test_service_owns_refresher_via_refresh_options(self):
        service = small_service(refresh_options={"interval_seconds": 0.05})
        try:
            assert service.refresher is not None
            assert service.refresher.running
            assert service._observer is service.refresher
        finally:
            service.close()
        assert not service.refresher.running
        assert service._observer is None

    def test_disabled_by_default_with_no_observer(self):
        with small_service() as service:
            assert service.refresher is None
            assert service._observer is None
            response = service.plan(SMALL)
            assert response.recommendations

    def test_close_detaches_observer(self):
        with small_service() as service:
            refresher = BackgroundRefresher(service)
            assert service._observer is refresher
            refresher.close()
            assert service._observer is None


class TestStatsAndMetrics:
    def test_stats_snapshot_counts(self):
        clock = FakeClock()
        with small_service(cache_ttl_seconds=10.0, cache_grace_seconds=60.0,
                           clock=clock) as service:
            refresher = BackgroundRefresher(service)
            service.plan(SMALL)
            clock.advance(12.0)
            service.plan(SMALL)
            refresher.run_once()
            stats = refresher.stats()
            assert stats.observed_requests == 2
            assert stats.completed >= 1
            assert stats.total_scheduled >= 1
            assert stats.queue_depth == 0
            refresher.close()

    def test_metrics_registered_on_service_registry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        clock = FakeClock()
        with small_service(metrics=registry, cache_ttl_seconds=10.0,
                           cache_grace_seconds=60.0, clock=clock) as service:
            refresher = BackgroundRefresher(service)
            service.plan(SMALL)
            clock.advance(12.0)
            service.plan(SMALL)
            refresher.run_once()
            snapshot = registry.snapshot()
            counters = snapshot["counters"]
            assert counters['repro_refresh_tasks_total{kind="stale"}'] >= 1
            assert counters["repro_refresh_completed_total"] >= 1
            assert counters["repro_plan_cache_stale_serves_total"] == 1
            refresher.close()

    def test_speculative_task_skipped_when_already_fresh(self):
        with small_service() as service:
            refresher = BackgroundRefresher(service)
            service.plan(SMALL)
            sig = service.signature_for(SMALL)
            with refresher._lock:
                refresher._enqueue_locked(KIND_PREWARM, sig.key(), sig, 1)
                task = refresher._pop_task_locked()
            refresher._execute(task)
            stats = refresher.stats()
            assert stats.skipped_fresh == 1
            assert stats.completed == 0
            refresher.close()
