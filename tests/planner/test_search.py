"""Planner search correctness: pruning must be invisible in the results.

The load-bearing property: on any design space, the pruned search returns the
*identical* ranked recommendations as the exhaustive search while provably
simulating fewer candidates.  That only holds if the cost-model bound is
admissible (never exceeds the simulated time), so that is tested directly.
"""

import pytest

from repro.bench.schemes import ua_schemes
from repro.bench.sweep import run_ua_point, valid_replication_factors
from repro.bench.workloads import Workload, attention_workload
from repro.core.config import ExecutionConfig, ExecutionMode
from repro.planner.search import (
    candidate_lower_bound,
    enumerate_candidates,
    memory_per_device,
    search_partitionings,
)
from repro.topology.machines import uniform_system

MACHINE = uniform_system(4)
SMALL = Workload("small", 96, 80, 64)


def as_tuples(recommendations):
    return [
        (rec.scheme.name, rec.replication, rec.stationary,
         rec.percent_of_peak, rec.simulated_time, rec.memory_per_device)
        for rec in recommendations
    ]


class TestPrunedEqualsExhaustive:
    def test_identical_best_with_fewer_simulations(self):
        """The acceptance criterion: same best plan, strictly fewer simulations."""
        exhaustive, ex_stats = search_partitionings(MACHINE, SMALL, prune=False)
        pruned, pr_stats = search_partitionings(MACHINE, SMALL, prune=True)
        assert as_tuples(pruned) == as_tuples(exhaustive)
        assert pr_stats.num_simulated < ex_stats.num_simulated
        assert pr_stats.num_pruned > 0
        assert pr_stats.num_simulated + pr_stats.num_pruned == pr_stats.num_candidates
        assert ex_stats.num_simulated == ex_stats.num_candidates

    def test_identical_top_k_ranking(self):
        exhaustive, _ = search_partitionings(MACHINE, SMALL, top_k=5, prune=False)
        pruned, _ = search_partitionings(MACHINE, SMALL, top_k=5, prune=True)
        assert len(exhaustive) == 5
        assert as_tuples(pruned) == as_tuples(exhaustive)

    @pytest.mark.parametrize("workload", [
        Workload("wide", 64, 256, 48),
        Workload("tall", 256, 48, 64),
        attention_workload(128, head_dim=32),
    ])
    def test_identical_across_shapes(self, workload):
        exhaustive, _ = search_partitionings(MACHINE, workload, top_k=3, prune=False)
        pruned, _ = search_partitionings(MACHINE, workload, top_k=3, prune=True)
        assert as_tuples(pruned) == as_tuples(exhaustive)

    def test_ir_mode_falls_back_to_exhaustive(self):
        config = ExecutionConfig(simulate_only=True, mode=ExecutionMode.IR)
        _, stats = search_partitionings(MACHINE, SMALL, config=config,
                                        replication_factors=[1],
                                        stationary_options=("C",))
        assert not stats.pruning_enabled
        assert stats.num_pruned == 0
        assert stats.num_simulated == stats.num_candidates


class TestLowerBoundAdmissible:
    def test_bound_never_exceeds_simulated_time(self):
        """Admissibility over the whole small design space, reduce term included."""
        config = ExecutionConfig(simulate_only=True)
        factors = valid_replication_factors(MACHINE.num_devices)
        candidates, _ = enumerate_candidates(
            MACHINE, SMALL, MACHINE.memory_capacity, ua_schemes(), factors,
            ("A", "B", "C"),
        )
        assert candidates
        for candidate in candidates:
            bound = candidate_lower_bound(MACHINE, SMALL, candidate, config)
            point = run_ua_point(MACHINE, SMALL, candidate.scheme,
                                 candidate.replication, candidate.stationary, config)
            assert bound <= point.simulated_time + 1e-12, candidate

    def test_bound_is_positive(self):
        candidates, _ = enumerate_candidates(
            MACHINE, SMALL, MACHINE.memory_capacity, ua_schemes(), [1], ("C",)
        )
        assert candidate_lower_bound(MACHINE, SMALL, candidates[0]) > 0.0


class TestEnumeration:
    def test_memory_budget_rejections_counted(self):
        itemsize = 4
        tight = sum(rows * cols for rows, cols in SMALL.shapes) * itemsize / 4 * 1.2
        candidates, rejected = enumerate_candidates(
            MACHINE, SMALL, tight, ua_schemes(), [1, 2, 4], ("C",)
        )
        assert rejected > 0
        assert all(cand.replication == (1, 1, 1) for cand in candidates)

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError):
            search_partitionings(MACHINE, SMALL, memory_budget_bytes=16)

    def test_memory_per_device_matches_budget_filter(self):
        footprint = memory_per_device(SMALL, (1, 1, 1), MACHINE.num_devices)
        assert footprint > 0
        candidates, _ = enumerate_candidates(
            MACHINE, SMALL, MACHINE.memory_capacity, ua_schemes(), [1], ("C",)
        )
        assert candidates[0].memory_per_device == footprint

    def test_enumeration_indices_are_dense(self):
        candidates, _ = enumerate_candidates(
            MACHINE, SMALL, MACHINE.memory_capacity, ua_schemes(), [1, 2], ("A", "B")
        )
        assert [cand.index for cand in candidates] == list(range(len(candidates)))
