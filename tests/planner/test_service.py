"""PlannerService behaviour: memoization, single-flight, batching, warm starts."""

import threading
import time

import pytest

import repro.planner.service as service_module
from repro.bench.schemes import scheme_by_name
from repro.bench.selector import PartitioningRecommendation
from repro.bench.workloads import Workload, attention_workload
from repro.planner import PlannerService
from repro.planner.search import SearchStats
from repro.topology.machines import uniform_system

MACHINE = uniform_system(4)
SMALL = Workload("small", 96, 80, 64)


def small_service(**kwargs) -> PlannerService:
    kwargs.setdefault("replication_factors", [1, 2])
    kwargs.setdefault("stationary_options", ("B", "C"))
    return PlannerService(MACHINE, **kwargs)


class TestMemoization:
    def test_second_request_is_a_cache_hit(self):
        with small_service() as service:
            cold = service.plan(SMALL)
            warm = service.plan(SMALL)
        assert not cold.cache_hit and cold.search_stats is not None
        assert warm.cache_hit and warm.search_stats is None
        assert warm.recommendation.describe() == cold.recommendation.describe()
        stats = service.stats()
        assert stats.requests == 2
        assert stats.plans_computed == 1
        assert stats.cache_hits == 1

    def test_bucketed_shapes_share_a_plan(self):
        with small_service() as service:
            service.plan(Workload("a", 4096, 128, 128))
            response = service.plan(Workload("b", 4100, 128, 128))
        assert response.cache_hit

    def test_distinct_shapes_plan_separately(self):
        with small_service() as service:
            service.plan(Workload("a", 96, 80, 64))
            response = service.plan(Workload("b", 512, 80, 64))
        assert not response.cache_hit
        assert service.stats().plans_computed == 2

    def test_top_k_override_changes_cache_identity(self):
        with small_service() as service:
            service.plan(SMALL)
            response = service.plan(SMALL, top_k=3)
        assert not response.cache_hit
        assert len(response.recommendations) == 3

    def test_matches_direct_selector(self):
        """With bucketing disabled the service answers exactly like the selector."""
        from repro.bench.selector import recommend_partitioning
        expected = recommend_partitioning(MACHINE, SMALL, replication_factors=[1, 2],
                                          stationary_options=("B", "C"))[0]
        with small_service(bucket_ratio=1.0) as service:
            got = service.plan(SMALL).recommendation
        assert (got.scheme.name, got.replication, got.stationary,
                got.percent_of_peak) == \
            (expected.scheme.name, expected.replication, expected.stationary,
             expected.percent_of_peak)

    def test_bucket_plans_are_arrival_order_independent(self):
        """Any member of a bucket gets the plan computed for the bucket corner."""
        small_first = small_service()
        large_first = small_service()
        with small_first, large_first:
            a = Workload("a", 4000, 128, 128)
            b = Workload("b", 4300, 128, 128)
            assert small_first.signature_for(a) == small_first.signature_for(b)
            plan_ab = small_first.plan(a)
            plan_ba = large_first.plan(b)
        assert plan_ab.recommendation.describe() == plan_ba.recommendation.describe()
        # The planned shape is the bucket corner: >= both members' dimensions.
        assert plan_ab.signature.m >= b.m

    def test_execution_config_changes_cache_identity(self):
        """Plans computed under different execution configs must not alias."""
        from repro.core.config import ExecutionConfig
        default = small_service()
        synchronous = small_service(
            config=ExecutionConfig.synchronous().evolve(simulate_only=True))
        with default, synchronous:
            sig_a = default.signature_for(SMALL)
            sig_b = synchronous.signature_for(SMALL)
        assert sig_a.key() != sig_b.key()

    def test_recommendation_is_buildable(self):
        with small_service() as service:
            rec = service.plan(SMALL).recommendation
        from repro.runtime.runtime import Runtime
        a, b, c = rec.build_matrices(Runtime(machine=MACHINE), SMALL, materialize=False)
        assert a.shape == (SMALL.m, SMALL.k) and c.shape == (SMALL.m, SMALL.n)


class TestSingleFlight:
    def _stub_search(self, monkeypatch, delay: float):
        """Replace the search with a slow stub so concurrency is deterministic."""
        calls = []
        rec = PartitioningRecommendation(
            scheme=scheme_by_name("column"), replication=(1, 1, 1), stationary="B",
            percent_of_peak=42.0, simulated_time=1.0, memory_per_device=1 << 20,
        )

        def slow_search(*args, **kwargs):
            calls.append(threading.get_ident())
            time.sleep(delay)
            return [rec], SearchStats(num_candidates=1, num_simulated=1)

        monkeypatch.setattr(service_module, "search_partitionings", slow_search)
        return calls

    def test_concurrent_identical_requests_coalesce(self, monkeypatch):
        calls = self._stub_search(monkeypatch, delay=0.3)
        with small_service() as service:
            responses = service.plan_many([SMALL] * 4)
        assert len(calls) == 1, "identical in-flight requests must share one search"
        assert sorted(r.coalesced for r in responses) == [False, True, True, True]
        assert all(r.recommendation.percent_of_peak == 42.0 for r in responses)
        stats = service.stats()
        assert stats.plans_computed == 1
        assert stats.coalesced_requests == 3
        assert stats.requests == 4

    def test_leader_failure_propagates_to_waiters(self, monkeypatch):
        def failing_search(*args, **kwargs):
            time.sleep(0.2)
            raise RuntimeError("boom")

        monkeypatch.setattr(service_module, "search_partitionings", failing_search)
        with small_service(max_workers=2) as service:
            futures = []
            from concurrent.futures import ThreadPoolExecutor
            with ThreadPoolExecutor(max_workers=2) as pool:
                futures = [pool.submit(service.plan, SMALL) for _ in range(2)]
                errors = []
                for future in futures:
                    with pytest.raises(RuntimeError):
                        future.result()
                    errors.append(True)
        assert len(errors) == 2
        # A failed flight must not poison the key: a retry plans afresh.
        monkeypatch.undo()
        with small_service() as service:
            assert not service.plan(SMALL).cache_hit


class TestPlanMany:
    def test_order_preserved(self):
        workloads = [Workload(f"w{i}", 64 * (i + 1), 80, 64) for i in range(3)]
        with small_service(max_workers=3) as service:
            responses = service.plan_many(workloads)
        assert [r.signature for r in responses] == \
            [service.signature_for(w) for w in workloads]

    def test_empty_batch(self):
        with small_service() as service:
            assert service.plan_many([]) == []


class TestPersistence:
    def test_warm_start_across_service_instances(self, tmp_path):
        store = str(tmp_path / "plans.json")
        with small_service(store_path=store) as first:
            first.plan(SMALL)
            first.save_store()

        with small_service(store_path=store) as second:
            response = second.plan(SMALL)
        assert second.stats().warm_start_entries == 1
        assert response.cache_hit
        assert second.stats().plans_computed == 0

    def test_autosave_on_new_plan(self, tmp_path):
        store = str(tmp_path / "plans.json")
        with small_service(store_path=store, autosave=True) as service:
            service.plan(SMALL)
            fresh = small_service(store_path=store)
            assert fresh.stats().warm_start_entries == 1
            fresh.close()

    def test_save_without_store_path_raises(self):
        with small_service() as service:
            with pytest.raises(ValueError):
                service.save_store()


class TestStats:
    def test_pruning_counters_aggregate(self):
        with small_service() as service:
            service.plan(SMALL)
            service.plan(attention_workload(128, head_dim=32))
        stats = service.stats()
        assert stats.plans_computed == 2
        assert stats.candidates_simulated >= 2
        assert stats.candidates_simulated + stats.candidates_pruned >= stats.candidates_simulated
        assert stats.total_planning_time > 0.0

    def test_hit_rate(self):
        with small_service() as service:
            service.plan(SMALL)
            service.plan(SMALL)
            service.plan(SMALL)
        assert service.stats().hit_rate == pytest.approx(2 / 3)
        assert service.cache_stats().hits == 2
