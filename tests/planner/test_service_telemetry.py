"""In-process PlannerService telemetry: metrics, spans, request log, rollup."""

import os

import pytest

from repro.bench.workloads import Workload
from repro.obs.metrics import MetricsRegistry
from repro.obs.reqlog import RequestLog, iter_records
from repro.obs.rollup import rollup_requests
from repro.obs.tracing import Tracer
from repro.core.graph import mlp_chain
from repro.planner import PlannerService
from repro.topology.machines import uniform_system

MACHINE = uniform_system(2)
SERVICE_OPTIONS = {"replication_factors": [1]}


def make_workload(m=96, n=80, k=64):
    return Workload(f"w{m}x{n}x{k}", m, n, k)


@pytest.fixture()
def telemetry(tmp_path):
    registry = MetricsRegistry()
    tracer = Tracer(role="svc-test")
    log = RequestLog(str(tmp_path / "requests.jsonl"))
    with PlannerService(MACHINE, metrics=registry, tracer=tracer,
                        request_log=log, **SERVICE_OPTIONS) as service:
        yield service, registry, tracer, log
    log.close()


class TestServiceMetrics:
    def test_outcome_counters_and_latency_histograms(self, telemetry):
        service, registry, _, _ = telemetry
        workload = make_workload()
        cold = service.plan(workload)
        warm = service.plan(workload)
        assert not cold.cache_hit and warm.cache_hit
        counters = registry.snapshot()["counters"]
        assert counters['repro_planner_requests_total{outcome="computed"}'] == 1.0
        assert counters['repro_planner_requests_total{outcome="hit"}'] == 1.0
        histograms = registry.snapshot()["histograms"]
        assert histograms['repro_planner_latency_seconds{outcome="computed"}']["count"] == 1
        assert histograms['repro_planner_latency_seconds{outcome="hit"}']["count"] == 1
        # Computed plans bill their search phases onto the phase counters.
        phase_seconds = {
            name: value for name, value in counters.items()
            if name.startswith("repro_search_phase_seconds_total")}
        assert phase_seconds['repro_search_phase_seconds_total{phase="simulate"}'] > 0.0

    def test_results_identical_with_and_without_telemetry(self, telemetry):
        service, _, _, _ = telemetry
        workload = make_workload(112, 64, 48)
        with PlannerService(MACHINE, **SERVICE_OPTIONS) as plain:
            reference = plain.plan(workload)
        traced = service.plan(workload)
        assert traced.recommendation.plan_key() == reference.recommendation.plan_key()
        assert traced.recommendation.simulated_time == \
            reference.recommendation.simulated_time

    def test_max_planning_time_tracks_the_slowest_request(self, telemetry):
        service, _, _, _ = telemetry
        service.plan(make_workload())
        stats = service.stats()
        assert stats.max_planning_time > 0.0
        assert stats.max_planning_time >= stats.total_planning_time / max(
            stats.plans_computed, 1) * 0.99


class TestServiceTracing:
    def test_computed_request_opens_search_phase_spans(self, telemetry):
        service, _, tracer, _ = telemetry
        service.plan(make_workload())
        spans = tracer.spans()
        names = {s.name for s in spans}
        assert {"planner.plan", "search.bound", "search.simulate"} <= names
        by_name = {s.name: s for s in spans}
        root = by_name["planner.plan"]
        assert root.parent_id is None
        assert root.attributes["outcome"] == "computed"
        # Search phases are children within the same trace.
        for name in names - {"planner.plan"}:
            assert by_name[name].trace_id == root.trace_id
        assert by_name["search.bound"].parent_id == root.span_id

    def test_cache_hit_is_a_single_span(self, telemetry):
        service, _, tracer, _ = telemetry
        workload = make_workload(104, 72, 56)
        service.plan(workload)
        tracer.clear()
        response = service.plan(workload)
        assert response.cache_hit
        (span,) = tracer.spans()
        assert span.name == "planner.plan"
        assert span.attributes["outcome"] == "hit"


class TestServiceRequestLog:
    def test_every_request_becomes_one_line(self, telemetry, tmp_path):
        service, _, _, log = telemetry
        workload = make_workload()
        service.plan(workload)
        service.plan(workload)
        records = list(iter_records(log.path))
        assert [r.outcome for r in records] == ["computed", "hit"]
        signature = service.signature_for(workload).key()
        assert all(r.signature == signature for r in records)
        assert all(r.pid == os.getpid() for r in records)
        assert records[0].phases  # computed requests carry the phase split
        assert not records[1].phases
        assert records[0].plan_age == 0.0
        assert records[1].plan_age >= 0.0
        assert all(r.trace_id for r in records)  # tracing was on


class TestAdaptiveFeedback:
    def test_rollup_feeds_eviction_weights_and_refresh_candidates(
            self, telemetry):
        service, _, _, log = telemetry
        hot = make_workload(96, 80, 64)
        cold = make_workload(128, 96, 32)
        for _ in range(3):
            service.plan(hot)
        service.plan(cold)

        rollup = rollup_requests(log.path)
        hot_key = service.signature_for(hot).key()
        cold_key = service.signature_for(cold).key()
        assert rollup.traffic_weights()[hot_key] == 3.0

        service.apply_rollup(rollup)
        weights = service.cache.traffic_weights
        assert weights is not None and weights[hot_key] == 3.0

        candidates = service.refresh_candidates(top_n=1)
        assert [key for key, _, _ in candidates] == [hot_key]
        (key, requests, age) = candidates[0]
        assert requests == 3
        assert age is None or age >= 0.0
        assert cold_key in [k for k, _, _ in service.refresh_candidates(top_n=5)]

        service.apply_rollup(None)
        assert service.cache.traffic_weights is None

    def test_refresh_candidates_without_rollup_is_empty(self):
        with PlannerService(MACHINE, **SERVICE_OPTIONS) as service:
            assert service.refresh_candidates() == []

    def test_refresh_candidates_order_is_deterministic_under_ties(
            self, telemetry):
        """Equal traffic weights must not leave ordering to dict insertion."""
        service, _, _, log = telemetry
        # Three distinct shapes, one request each: a three-way traffic tie.
        shapes = [make_workload(512, 80, 64), make_workload(96, 80, 64),
                  make_workload(96, 512, 64)]
        for workload in shapes:
            service.plan(workload)
        service.apply_rollup(rollup_requests(log.path))
        candidates = service.refresh_candidates(top_n=3)
        keys = [key for key, _, _ in candidates]
        assert keys == sorted(keys)

    def test_stale_serve_is_logged_as_stale_outcome(self, tmp_path):
        class Clock:
            now = 1000.0

            def __call__(self):
                return self.now

        clock = Clock()
        log = RequestLog(str(tmp_path / "requests.jsonl"))
        with PlannerService(MACHINE, request_log=log, clock=clock,
                            cache_ttl_seconds=10.0, cache_grace_seconds=60.0,
                            **SERVICE_OPTIONS) as service:
            workload = make_workload()
            service.plan(workload)
            clock.now += 15.0
            response = service.plan(workload)
            assert response.stale
        log.close()
        outcomes = [record.outcome for record in iter_records(log.path)]
        assert outcomes == ["computed", "stale"]

    def test_request_log_timestamps_use_the_injected_clock(self, tmp_path):
        """Regression: record ``ts`` must tick on the service clock, not
        wall time — fake-clock replays otherwise log timestamps the cache's
        TTL/plan-age accounting never saw."""
        class Clock:
            now = 5000.0

            def __call__(self):
                return self.now

        clock = Clock()
        log = RequestLog(str(tmp_path / "requests.jsonl"))
        with PlannerService(MACHINE, request_log=log, clock=clock,
                            **SERVICE_OPTIONS) as service:
            service.plan(make_workload())
            clock.now = 5123.0
            service.plan(make_workload())
        log.close()
        records = list(iter_records(log.path))
        assert [r.ts for r in records] == [5000.0, 5123.0]


class TestGraphPlanTelemetry:
    def test_graph_requests_share_the_serving_telemetry(self, telemetry):
        service, registry, tracer, log = telemetry
        graph = mlp_chain(96, 64)
        cold = service.plan_graph(graph)
        warm = service.plan_graph(graph)
        assert not cold.cache_hit and warm.cache_hit

        counters = registry.snapshot()["counters"]
        assert counters['repro_planner_requests_total{outcome="computed"}'] == 1.0
        assert counters['repro_planner_requests_total{outcome="hit"}'] == 1.0

        spans = [s for s in tracer.spans() if s.name == "planner.plan_graph"]
        assert [s.attributes["outcome"] for s in spans] == ["computed", "hit"]
        assert spans[0].attributes["method"] == "chain_dp"
        assert spans[0].attributes["signature"] == cold.signature.key()

        records = list(iter_records(log.path))
        assert [r.outcome for r in records] == ["computed", "hit"]
        assert all(r.workload == graph.name for r in records)
        assert all(r.signature == cold.signature.key() for r in records)
        assert records[0].phases  # computed graph plans bill search phases

    def test_graph_stats_count_requests_and_hits(self, telemetry):
        service, _, _, _ = telemetry
        graph = mlp_chain(96, 64)
        service.plan_graph(graph)
        service.plan_graph(graph)
        stats = service.stats()
        assert stats.requests == 2
        assert stats.plans_computed == 1
        assert stats.cache_hits == 1
        assert stats.candidates_simulated > 0
