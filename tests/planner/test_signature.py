"""Unit tests for problem signatures: bucketing and machine fingerprints."""

import pytest

from repro.bench.workloads import Workload, mlp1_workload
from repro.planner.signature import (
    DEFAULT_BUCKET_RATIO,
    ProblemSignature,
    bucket_dim,
    machine_fingerprint,
    options_fingerprint,
)
from repro.topology.machines import h100_system, pvc_system, uniform_system


class TestBucketDim:
    def test_near_identical_dims_share_a_bucket(self):
        assert bucket_dim(4096) == bucket_dim(4100)
        assert bucket_dim(1000) == bucket_dim(1024)

    def test_paper_batch_sweep_stays_distinct(self):
        """1024/2048/4096/8192 are factors of 2 apart: separate buckets."""
        buckets = {bucket_dim(batch) for batch in (1024, 2048, 4096, 8192)}
        assert len(buckets) == 4

    def test_monotone(self):
        values = [bucket_dim(v) for v in (1, 7, 64, 500, 4096, 100000)]
        assert values == sorted(values)

    def test_ratio_one_disables_bucketing(self):
        assert bucket_dim(4097, ratio=1.0) == 4097
        assert bucket_dim(4097, ratio=None) == 4097

    def test_tiny_dims_stay_positive(self):
        assert bucket_dim(1) >= 1
        assert bucket_dim(2) >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bucket_dim(0)


class TestMachineFingerprint:
    def test_deterministic(self):
        assert machine_fingerprint(pvc_system(12)) == machine_fingerprint(pvc_system(12))

    def test_distinguishes_systems(self):
        prints = {
            machine_fingerprint(pvc_system(12)),
            machine_fingerprint(h100_system(8)),
            machine_fingerprint(uniform_system(4)),
        }
        assert len(prints) == 3

    def test_device_count_changes_fingerprint(self):
        assert machine_fingerprint(pvc_system(12)) != machine_fingerprint(pvc_system(6))


class TestProblemSignature:
    MACHINE = uniform_system(4)

    def test_bucketed_requests_share_a_key(self):
        sig_a = ProblemSignature.from_request(self.MACHINE, Workload("a", 4096, 512, 512))
        sig_b = ProblemSignature.from_request(self.MACHINE, Workload("b", 4100, 512, 512))
        assert sig_a == sig_b
        assert sig_a.key() == sig_b.key()

    def test_different_machines_never_collide(self):
        workload = mlp1_workload(1024)
        sig_a = ProblemSignature.from_request(self.MACHINE, workload)
        sig_b = ProblemSignature.from_request(h100_system(8), workload)
        assert sig_a.key() != sig_b.key()

    def test_options_digest_separates_keys(self):
        workload = mlp1_workload(1024)
        sig_a = ProblemSignature.from_request(self.MACHINE, workload,
                                              options=options_fingerprint(top_k=1))
        sig_b = ProblemSignature.from_request(self.MACHINE, workload,
                                              options=options_fingerprint(top_k=3))
        assert sig_a.key() != sig_b.key()

    def test_memory_budget_in_key(self):
        workload = mlp1_workload(1024)
        sig_a = ProblemSignature.from_request(self.MACHINE, workload)
        sig_b = ProblemSignature.from_request(self.MACHINE, workload,
                                              memory_budget_bytes=1e9)
        assert sig_a.key() != sig_b.key()

    def test_representative_workload_is_valid(self):
        sig = ProblemSignature.from_request(self.MACHINE, Workload("w", 4096, 512, 64))
        rep = sig.representative_workload()
        assert rep.m == sig.m and rep.n == sig.n and rep.k == sig.k
        assert rep.flops > 0

    def test_hashable(self):
        workload = mlp1_workload(1024)
        sig = ProblemSignature.from_request(self.MACHINE, workload)
        assert sig in {ProblemSignature.from_request(self.MACHINE, workload)}
