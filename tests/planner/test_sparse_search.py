"""The sparse/MoE frontier through the planner: search parity, end-to-end
service planning, signature bucketing feasibility, and store invalidation."""

import pytest

from repro.bench.workloads import Workload, block_sparse_workload, moe_workload
from repro.core.config import ExecutionConfig
from repro.core.structure import BlockSparse, MoERagged
from repro.planner.cache import PlanEntry
from repro.planner.search import memory_per_device, search_partitionings
from repro.planner.service import PlannerService
from repro.planner.signature import (
    DEFAULT_BUCKET_RATIO,
    ProblemSignature,
    bucket_workload,
)
from repro.topology.machines import uniform_system

CONFIG = ExecutionConfig(simulate_only=True)
MACHINE = uniform_system(4)


def _ranking(recommendations):
    return [(r.scheme.name, r.replication, r.stationary, r.simulated_time)
            for r in recommendations]


def _sparse_grid():
    return [
        block_sparse_workload(128, 256, 256, density=0.1, block_k=64,
                              block_n=64, seed=2),
        block_sparse_workload(128, 256, 256, density=0.5, block_k=32,
                              block_n=32, seed=5),
        moe_workload(4, 64, 256, 128, expert_tokens=[64, 5, 9, 1]),
        moe_workload(2, 96, 128, 256, expert_tokens=[96, 96]),
    ]


class TestPrunedMatchesExhaustiveOnSparse:
    @pytest.mark.parametrize("workload", _sparse_grid(), ids=lambda w: w.name)
    def test_identical_ranking(self, workload):
        exhaustive, _ = search_partitionings(MACHINE, workload, config=CONFIG,
                                             prune=False, top_k=3)
        pruned, stats = search_partitionings(MACHINE, workload, config=CONFIG,
                                             prune=True, top_k=3)
        assert _ranking(pruned) == _ranking(exhaustive)
        assert stats.num_simulated < stats.num_candidates

    def test_search_prefers_different_partitionings_than_envelope(self):
        """The acceptance headline: sparse structure changes the winner."""
        sparse = block_sparse_workload(256, 512, 512, density=0.1, block_k=64,
                                       block_n=64, seed=1)
        envelope = Workload("env", 256, 512, 512)
        best_sparse, _ = search_partitionings(MACHINE, sparse, config=CONFIG)
        best_dense, _ = search_partitionings(MACHINE, envelope, config=CONFIG)
        assert (best_sparse[0].scheme.name, best_sparse[0].stationary) != (
            best_dense[0].scheme.name, best_dense[0].stationary)

    def test_ragged_moe_prefers_different_partitionings_than_envelope(self):
        moe = moe_workload(4, 256, 256, 256, expert_tokens=[256, 20, 20, 20])
        envelope = Workload("env", 1024, 256, 256)
        best_moe, _ = search_partitionings(MACHINE, moe, config=CONFIG)
        best_dense, _ = search_partitionings(MACHINE, envelope, config=CONFIG)
        assert best_moe[0].scheme.name != best_dense[0].scheme.name


class TestPlannerServiceEndToEnd:
    def test_block_sparse_plans_through_service(self):
        workload = block_sparse_workload(256, 512, 512, density=0.25,
                                         block_k=64, block_n=64, seed=1)
        assert workload.structure.density <= 0.25
        with PlannerService(MACHINE) as service:
            response = service.plan(workload)
            assert response.recommendations
            assert not response.cache_hit
            again = service.plan(workload)
            assert again.cache_hit
            assert _ranking(again.recommendations) == _ranking(response.recommendations)

    def test_moe_ragged_plans_through_service(self):
        workload = moe_workload(4, 64, 256, 256, expert_tokens=[64, 3, 7, 2])
        with PlannerService(MACHINE) as service:
            response = service.plan(workload)
            assert response.recommendations
            assert service.plan(workload).cache_hit

    def test_sparse_and_dense_envelope_never_share_a_cache_entry(self):
        sparse = block_sparse_workload(256, 512, 512, density=0.25,
                                       block_k=64, block_n=64, seed=1)
        envelope = Workload("env", 256, 512, 512)
        with PlannerService(MACHINE) as service:
            key_sparse = service.signature_for(sparse).key()
            key_dense = service.signature_for(envelope).key()
            assert key_sparse != key_dense

    def test_different_density_buckets_get_distinct_plans(self):
        lean = block_sparse_workload(256, 512, 512, density=0.1, block_k=64,
                                     block_n=64, seed=1)
        rich = block_sparse_workload(256, 512, 512, density=0.8, block_k=64,
                                     block_n=64, seed=1)
        with PlannerService(MACHINE) as service:
            assert service.signature_for(lean).key() != service.signature_for(rich).key()


class TestSignatureBucketing:
    def test_nearby_densities_share_a_bucket(self):
        # 52 vs 55 live blocks of 8x8=64: within one geometric bucket.
        near_a = block_sparse_workload(256, 512, 512, density=52 / 64,
                                       block_k=64, block_n=64, seed=1)
        near_b = block_sparse_workload(256, 512, 512, density=55 / 64,
                                       block_k=64, block_n=64, seed=9)
        sig_a = ProblemSignature.from_request(MACHINE, near_a)
        sig_b = ProblemSignature.from_request(MACHINE, near_b)
        assert sig_a.key() == sig_b.key()

    def test_nearby_token_counts_share_a_bucket(self):
        near_a = moe_workload(4, 64, 256, 256, expert_tokens=[60, 20, 10, 10])
        near_b = moe_workload(4, 64, 256, 256, expert_tokens=[40, 30, 20, 14])
        sig_a = ProblemSignature.from_request(MACHINE, near_a)
        sig_b = ProblemSignature.from_request(MACHINE, near_b)
        assert sig_a.key() == sig_b.key()

    def test_expert_count_always_separates_buckets(self):
        four = moe_workload(4, 64, 256, 256, expert_tokens=[32, 32, 32, 32])
        eight = moe_workload(8, 32, 256, 256, expert_tokens=[16] * 8)
        assert (ProblemSignature.from_request(MACHINE, four).key()
                != ProblemSignature.from_request(MACHINE, eight).key())

    @pytest.mark.parametrize("member", _sparse_grid(), ids=lambda w: w.name)
    def test_bucket_corner_dominates_member_footprint(self, member):
        """Plans are memory-checked at the corner, so the corner's footprint
        must bound every member's for every replication choice."""
        m, n, k, corner_structure = bucket_workload(member, DEFAULT_BUCKET_RATIO)
        corner = Workload("corner", m, n, k, structure=corner_structure)
        for factor in (1, 2, 4):
            for c_factor in (1, 2, 4):
                replication = (factor, factor, c_factor)
                assert memory_per_device(member, replication, 4) <= \
                    memory_per_device(corner, replication, 4)

    def test_corner_preserves_live_counts_at_least(self):
        member = block_sparse_workload(256, 512, 512, density=0.25,
                                       block_k=64, block_n=64, seed=1)
        _, _, _, corner = bucket_workload(member, DEFAULT_BUCKET_RATIO)
        assert isinstance(corner, BlockSparse)
        assert corner.live_blocks >= member.structure.live_blocks

        moe = moe_workload(4, 60, 256, 256, expert_tokens=[60, 3, 7, 2])
        m, _, _, moe_corner = bucket_workload(moe, DEFAULT_BUCKET_RATIO)
        assert isinstance(moe_corner, MoERagged)
        assert moe_corner.total_tokens >= moe.structure.total_tokens
        assert moe_corner.capacity >= moe.structure.capacity
        assert m == moe_corner.num_experts * moe_corner.capacity

    def test_disabled_bucketing_serves_the_exact_structure(self):
        """bucket_ratio <= 1 must preserve raggedness/mask bit-for-bit."""
        moe = moe_workload(4, 64, 256, 256, expert_tokens=[64, 3, 7, 2])
        m, n, k, structure = bucket_workload(moe, 1.0)
        assert (m, n, k) == (moe.m, moe.n, moe.k)
        assert structure == moe.structure
        sparse = block_sparse_workload(256, 512, 512, density=0.25, seed=1)
        _, _, _, exact = bucket_workload(sparse, None)
        assert exact == sparse.structure

    def test_representative_workload_carries_structure(self):
        workload = moe_workload(4, 64, 256, 256, expert_tokens=[64, 3, 7, 2])
        signature = ProblemSignature.from_request(MACHINE, workload)
        representative = signature.representative_workload()
        assert isinstance(representative.structure, MoERagged)
        # The representative validates: its envelope matches its structure.
        representative.structure.validate(representative.m, representative.n,
                                          representative.k)


class TestSparseStoreInvalidation:
    def test_stale_sparse_entries_dropped_on_load(self, tmp_path):
        """A sparse plan priced by an older cost-model build must not serve."""
        path = str(tmp_path / "plans.json")
        workload = block_sparse_workload(256, 512, 512, density=0.25,
                                         block_k=64, block_n=64, seed=1)
        service = PlannerService(MACHINE, store_path=path)
        service.plan(workload)
        service.save_store()
        service.close()

        stale = PlannerService(MACHINE)
        stale.cost_model_fingerprint = "different-build"
        assert stale.cache.load(path, fingerprint="different-build") == 0

        fresh = PlannerService(MACHINE, store_path=path)
        key = fresh.signature_for(workload).key()
        assert fresh.cache.get(key) is not None
        assert fresh.plan(workload).cache_hit
        fresh.close()

    def test_sparse_plan_entries_roundtrip_structure_through_json(self):
        workload = moe_workload(4, 64, 256, 256, expert_tokens=[64, 3, 7, 2])
        with PlannerService(MACHINE) as service:
            response = service.plan(workload)
            key = response.signature.key()
            entry = service.cache.get(key)
        revived = PlanEntry.from_dict(entry.to_dict())
        assert isinstance(revived.workload.structure, MoERagged)
        assert revived.workload == entry.workload
