"""Property pins for the vectorized + incremental evaluation core.

The batch evaluator's contract is *bit-equality* with the scalar path — not
tolerance-based closeness.  Anything weaker would let the pruned search
return different recommendations under the two evaluators on exact ties,
which the planner tests pin.  Four families:

1. **Vectorized frontier pricing** — ``frontier_occupancy_bounds`` equals the
   scalar ``candidate_lower_bound(..., BOUND_OCCUPANCY)`` with ``==`` across
   randomized machines, configs, and dense/block-sparse/MoE-ragged workloads.
2. **Delta re-simulation** — the critical-path bound from a *warm* evaluator
   (replay caches populated by earlier candidates, checkpoint resumes taken)
   equals both the cold evaluator's answer and the scalar relaxed replay.
3. **Compiled event tables** — the primitive-int enumerator emits exactly the
   op stream of ``generate_all_ops`` + ``prune_structured_ops``, op for op.
4. **End-to-end search** — ``search_partitionings`` returns identical
   recommendations and identical pruning counters under ``use_batch=True``
   and ``use_batch=False``.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.schemes import ua_schemes
from repro.bench.sweep import run_ua_point, valid_replication_factors
from repro.bench.workloads import Workload
from repro.core.config import ExecutionConfig
from repro.core.slicing import generate_all_ops
from repro.core.stationary import parse_stationary
from repro.core.structure import BlockSparse, MoERagged, prune_structured_ops, resolve_structure
from repro.planner.search import (
    BOUND_CRITICAL_PATH,
    BOUND_OCCUPANCY,
    candidate_lower_bound,
    enumerate_candidates,
    search_partitionings,
)
from repro.sim.batch import BatchEvaluator
from repro.topology.machines import GB, uniform_system


@st.composite
def machine_and_config(draw):
    num_devices = draw(st.sampled_from([2, 4]))
    link_gb = draw(st.sampled_from([2, 25, 400]))
    machine = uniform_system(num_devices, link_bandwidth=link_gb * GB)
    config = ExecutionConfig(
        simulate_only=True,
        prefetch_depth=draw(st.integers(min_value=0, max_value=3)),
        async_execution=draw(st.booleans()),
        iteration_offset=draw(st.booleans()),
        cache_remote_tiles=draw(st.booleans()),
    )
    return machine, config


@st.composite
def any_workload(draw):
    m = draw(st.integers(min_value=2, max_value=5)) * 32
    n = draw(st.integers(min_value=2, max_value=5)) * 32
    k = draw(st.integers(min_value=2, max_value=5)) * 32
    kind = draw(st.sampled_from(["dense", "block_sparse", "moe"]))
    if kind == "dense":
        return Workload(f"dense_{m}x{n}x{k}", m, n, k)
    if kind == "block_sparse":
        k_blocks, n_blocks = k // 32, n // 32
        rng = random.Random(draw(st.integers(min_value=0, max_value=2**16)))
        # At least one live block, arbitrary mask otherwise.
        mask = [[rng.random() < 0.6 for _ in range(n_blocks)]
                for _ in range(k_blocks)]
        mask[rng.randrange(k_blocks)][rng.randrange(n_blocks)] = True
        structure = BlockSparse(block_k=32, block_n=32,
                                mask=tuple(tuple(row) for row in mask))
        return Workload(f"bs_{m}x{n}x{k}", m, n, k, structure=structure)
    num_experts = draw(st.sampled_from([2, 4]))
    capacity = m // num_experts
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**16)))
    tokens = tuple(rng.randint(0, capacity) for _ in range(num_experts))
    if sum(tokens) == 0:
        tokens = (capacity,) + tokens[1:]
    structure = MoERagged(expert_tokens=tokens, capacity=capacity)
    return Workload(f"moe_{m}x{n}x{k}", m, n, k, structure=structure)


def _candidates(machine, workload):
    factors = valid_replication_factors(machine.num_devices)
    candidates, _ = enumerate_candidates(
        machine, workload, machine.memory_capacity, ua_schemes(), factors,
        ("A", "B", "C"),
    )
    return candidates


class TestVectorizedBoundsBitEqual:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(mc=machine_and_config(), workload=any_workload(),
           data=st.data())
    def test_frontier_occupancy_equals_scalar(self, mc, workload, data):
        machine, config = mc
        candidates = _candidates(machine, workload)
        # A random slice keeps each example cheap without biasing the space.
        start = data.draw(st.integers(min_value=0, max_value=max(0, len(candidates) - 12)))
        subset = candidates[start:start + 12]
        evaluator = BatchEvaluator(machine, workload, config)
        bounds = evaluator.frontier_occupancy_bounds(subset)
        for candidate, batch_bound in zip(subset, bounds):
            scalar_bound = candidate_lower_bound(machine, workload, candidate,
                                                 config, BOUND_OCCUPANCY)
            assert batch_bound == scalar_bound, candidate

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(mc=machine_and_config(), workload=any_workload(),
           data=st.data())
    def test_critical_bound_equals_scalar(self, mc, workload, data):
        machine, config = mc
        candidates = _candidates(machine, workload)
        start = data.draw(st.integers(min_value=0, max_value=max(0, len(candidates) - 8)))
        subset = candidates[start:start + 8]
        evaluator = BatchEvaluator(machine, workload, config)
        for candidate in subset:
            batch_bound = evaluator.critical_bound(candidate)
            scalar_bound = candidate_lower_bound(machine, workload, candidate,
                                                 config, BOUND_CRITICAL_PATH)
            assert batch_bound == scalar_bound, candidate


class TestDeltaReplayEqualsCold:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(mc=machine_and_config(), workload=any_workload(),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_warm_evaluator_matches_cold(self, mc, workload, seed):
        """Checkpoint resumes must be invisible: a warm evaluator (caches
        populated by a random candidate walk, revisits included) returns the
        same critical bound a fresh evaluator computes from scratch."""
        machine, config = mc
        candidates = _candidates(machine, workload)
        rng = random.Random(seed)
        walk = [rng.choice(candidates) for _ in range(10)]
        walk += rng.sample(walk, k=min(4, len(walk)))  # force revisits
        warm = BatchEvaluator(machine, workload, config)
        for candidate in walk:
            warm_bound = warm.critical_bound(candidate)
            cold = BatchEvaluator(machine, workload, config)
            cold_bound = cold.critical_bound(candidate)
            scalar_bound = candidate_lower_bound(machine, workload, candidate,
                                                 config, BOUND_CRITICAL_PATH)
            assert warm_bound == cold_bound == scalar_bound, candidate

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(mc=machine_and_config(), workload=any_workload(),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_simulate_equals_run_ua_point(self, mc, workload, seed):
        machine, config = mc
        candidates = _candidates(machine, workload)
        rng = random.Random(seed)
        evaluator = BatchEvaluator(machine, workload, config)
        for candidate in rng.sample(candidates, k=min(4, len(candidates))):
            batch_point = evaluator.simulate(candidate)
            scalar_point = run_ua_point(machine, workload, candidate.scheme,
                                        candidate.replication,
                                        candidate.stationary, config)
            assert batch_point == scalar_point, candidate


class TestCompiledTableMatchesReference:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(mc=machine_and_config(), workload=any_workload(),
           data=st.data())
    def test_event_table_mirrors_generate_all_ops(self, mc, workload, data):
        """The primitive-int enumerator must emit the exact pruned op stream
        of the reference generator: same count, order, shapes, and flags."""
        machine, config = mc
        candidates = _candidates(machine, workload)
        candidate = data.draw(st.sampled_from(candidates))
        evaluator = BatchEvaluator(machine, workload, config)
        program = evaluator.compile(candidate)
        cls = program.cls
        per_rank_ops = generate_all_ops(cls.a, cls.b, cls.c,
                                        parse_stationary(candidate.stationary))
        structure = resolve_structure(workload.structure)
        if structure is not None:
            per_rank_ops = prune_structured_ops(per_rank_ops, structure)
        reference = [op for rank in sorted(per_rank_ops)
                     for op in per_rank_ops[rank]]
        assert program.num_ops == len(reference)
        col = program.col
        for i, op in enumerate(reference):
            assert col["rank"][i] == op.rank
            assert col["m"][i] == op.m
            assert col["n"][i] == op.n
            assert col["k"][i] == op.k
            assert col["c_bytes"][i] == (
                op.c_bytes if structure is None
                else op.c_bytes * structure.op_fractions(
                    op.m_bound, op.k_bound, op.n_bound)[3])
            assert bool(col["a_remote"][i]) == op.a_is_remote
            assert bool(col["b_remote"][i]) == op.b_is_remote
            assert bool(col["c_remote"][i]) == op.c_is_remote


class TestSearchIdenticalUnderBothEvaluators:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(mc=machine_and_config(), workload=any_workload(),
           top_k=st.sampled_from([1, 3]), prune=st.booleans())
    def test_recommendations_and_counters_match(self, mc, workload, top_k, prune):
        machine, config = mc
        batch_recs, batch_stats = search_partitionings(
            machine, workload, top_k=top_k, prune=prune, config=config)
        scalar_recs, scalar_stats = search_partitionings(
            machine, workload, top_k=top_k, prune=prune, config=config,
            use_batch=False)

        def as_tuples(recommendations):
            return [
                (rec.scheme.name, rec.replication, rec.stationary,
                 rec.percent_of_peak, rec.simulated_time, rec.memory_per_device)
                for rec in recommendations
            ]

        assert as_tuples(batch_recs) == as_tuples(scalar_recs)
        assert batch_stats.num_simulated == scalar_stats.num_simulated
        assert batch_stats.num_pruned == scalar_stats.num_pruned
        assert batch_stats.num_refined == scalar_stats.num_refined
