"""Property pins for the joint graph planner's solvers and edge pricing.

Three families:

1. **Chain DP exactness** — on synthetic lattices (random per-candidate op
   times, random non-negative reshard tables) the DP's makespan equals the
   exhaustive scan over every joint assignment, and never loses to the
   all-greedy assignment.
2. **Branch-and-bound exactness** — same exhaustive equality on small random
   DAGs (the critical-path bound must stay admissible for any weight mix).
3. **Edge-weight parity** — a DP transition weight in the planner's edge
   tables equals :func:`repro.dist.redistribute.redistribution_cost` for the
   same (producer output, consumer operand) layout pair on a real machine.

Makespans are compared exactly: both solvers and the exhaustive reference
price assignments through the same ``dag_makespan`` accumulation order, so
any drift is a logic bug, not float noise.  Assignments are *not* compared —
on exact ties the DP's backwards tie-break may legitimately pick a different
minimizer than the exhaustive forward scan.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.graph import GraphEdge, GraphOp, OpGraph, matmul_chain
from repro.dist.matrix import DistributedMatrix
from repro.dist.redistribute import redistribution_cost
from repro.planner.graph import (
    OpLattice,
    _solve_chain_dp,
    _solve_dag_branch_and_bound,
    assignment_timing,
    build_edge_tables,
    candidate_layout,
    exhaustive_joint_plan,
    op_workload,
)
from repro.planner.search import search_partitionings
from repro.runtime.runtime import Runtime
from repro.topology.machines import uniform_system


class FakeRec:
    """Stand-in recommendation: the solvers only read ``simulated_time``."""

    __slots__ = ("simulated_time",)

    def __init__(self, simulated_time):
        self.simulated_time = simulated_time


def uniform_op(name):
    return GraphOp(name, 8, 8, 8)


times = st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False)


@st.composite
def synthetic_chain(draw):
    """A chain graph with random lattices and random edge tables."""
    num_ops = draw(st.integers(min_value=1, max_value=3))
    graph = matmul_chain("chain", [uniform_op(f"op{i}") for i in range(num_ops)])
    widths = [draw(st.integers(min_value=1, max_value=6)) for _ in range(num_ops)]
    lattices = [
        OpLattice(op_workload(graph.ops[i]),
                  tuple(FakeRec(draw(times)) for _ in range(widths[i])))
        for i in range(num_ops)
    ]
    tables = [
        [[draw(times) for _ in range(widths[edge.dst])]
         for _ in range(widths[edge.src])]
        for edge in graph.edges
    ]
    return graph, lattices, tables


@st.composite
def synthetic_dag(draw):
    """A small random DAG (every op fed through its A slot, optional B fan-in)."""
    num_ops = draw(st.integers(min_value=2, max_value=4))
    ops = tuple(uniform_op(f"op{i}") for i in range(num_ops))
    edges = []
    for dst in range(1, num_ops):
        src = draw(st.integers(min_value=0, max_value=dst - 1))
        edges.append(GraphEdge(src, dst, "A"))
        if dst >= 2 and draw(st.booleans()):
            other = draw(st.integers(min_value=0, max_value=dst - 1))
            edges.append(GraphEdge(other, dst, "B"))
    graph = OpGraph(name="dag", ops=ops, edges=tuple(edges))
    widths = [draw(st.integers(min_value=1, max_value=4)) for _ in range(num_ops)]
    lattices = [
        OpLattice(op_workload(ops[i]),
                  tuple(FakeRec(draw(times)) for _ in range(widths[i])))
        for i in range(num_ops)
    ]
    tables = [
        [[draw(times) for _ in range(widths[edge.dst])]
         for _ in range(widths[edge.src])]
        for edge in graph.edges
    ]
    return graph, lattices, tables


class TestChainDP:
    @given(synthetic_chain())
    @settings(max_examples=80, deadline=None)
    def test_dp_makespan_equals_exhaustive(self, case):
        graph, lattices, tables = case
        _, dp_makespan = _solve_chain_dp(graph, lattices, tables)
        _, best_makespan = exhaustive_joint_plan(graph, lattices, tables)
        assert dp_makespan == best_makespan

    @given(synthetic_chain())
    @settings(max_examples=80, deadline=None)
    def test_dp_assignment_prices_to_its_makespan(self, case):
        graph, lattices, tables = case
        assignment, makespan = _solve_chain_dp(graph, lattices, tables)
        assert assignment_timing(graph, lattices, tables,
                                 assignment).makespan == makespan

    @given(synthetic_chain())
    @settings(max_examples=80, deadline=None)
    def test_dp_never_loses_to_greedy(self, case):
        graph, lattices, tables = case
        _, makespan = _solve_chain_dp(graph, lattices, tables)
        greedy = [0] * len(graph.ops)
        assert makespan <= assignment_timing(graph, lattices, tables,
                                             greedy).makespan


class TestBranchAndBound:
    @given(synthetic_dag())
    @settings(max_examples=60, deadline=None)
    def test_bnb_makespan_equals_exhaustive(self, case):
        graph, lattices, tables = case
        _, makespan, _ = _solve_dag_branch_and_bound(graph, lattices, tables)
        _, best_makespan = exhaustive_joint_plan(graph, lattices, tables)
        assert makespan == best_makespan

    @given(synthetic_dag())
    @settings(max_examples=60, deadline=None)
    def test_bnb_assignment_prices_to_its_makespan(self, case):
        graph, lattices, tables = case
        assignment, makespan, _ = _solve_dag_branch_and_bound(graph, lattices,
                                                              tables)
        assert assignment_timing(graph, lattices, tables,
                                 assignment).makespan == makespan


class TestEdgeWeightParity:
    @given(
        st.sampled_from([2, 4]),
        st.sampled_from([64, 96, 128]),
        st.sampled_from([48, 80, 256]),
        st.sampled_from([32, 64, 192]),
    )
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_table_weight_is_the_redistribution_cost(self, devices, m, n, k):
        """tables[e][i][j] == redistribution_cost(C layout i -> operand j)."""
        machine = uniform_system(devices)
        graph = matmul_chain("pair", [GraphOp("p0", m, n, k),
                                      GraphOp("p1", m, k, n)])
        lattices = []
        for op in graph.ops:
            recs, _ = search_partitionings(machine, op_workload(op), top_k=3,
                                           replication_factors=[1])
            lattices.append(OpLattice(op_workload(op), tuple(recs)))
        tables = build_edge_tables(machine, graph, lattices)
        runtime = Runtime(machine=machine)
        src_lat, dst_lat = lattices[0], lattices[1]
        for i, src_rec in enumerate(src_lat.recommendations):
            src_part, src_rep = candidate_layout(machine, src_lat.workload,
                                                 src_rec, 2)
            for j, dst_rec in enumerate(dst_lat.recommendations):
                dst_part, dst_rep = candidate_layout(machine, dst_lat.workload,
                                                     dst_rec, 0)
                matrix = DistributedMatrix.create(
                    runtime, (m, n), src_part, replication=src_rep,
                    materialize=False)
                cost = redistribution_cost(matrix, dst_part,
                                           replication=dst_rep)
                assert tables[0][i][j] == float(cost["modelled_time_s"])
