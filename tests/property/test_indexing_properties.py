"""Property-based tests of the index-arithmetic primitives (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.indexing import Interval, Rect, block_bounds, block_index_range, split_extent

intervals = st.builds(
    lambda start, extent: Interval(start, start + extent),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
)


class TestIntervalProperties:
    @given(intervals, intervals)
    def test_intersection_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals, intervals, intervals)
    def test_intersection_associative(self, a, b, c):
        assert a.intersect(b).intersect(c) == a.intersect(b.intersect(c))

    @given(intervals, intervals)
    def test_intersection_contained_in_both(self, a, b):
        overlap = a.intersect(b)
        if overlap:
            assert a.contains_interval(overlap)
            assert b.contains_interval(overlap)

    @given(intervals)
    def test_intersection_with_self_is_identity(self, interval):
        assert interval.intersect(interval) == interval

    @given(intervals, st.integers(min_value=-500, max_value=500))
    def test_shift_roundtrip(self, interval, offset):
        assert interval.shift(offset).shift(-offset) == interval

    @given(intervals, intervals)
    def test_overlaps_iff_nonempty_intersection(self, a, b):
        assert a.overlaps(b) == bool(a.intersect(b))


class TestSplitProperties:
    @given(st.integers(min_value=0, max_value=10000), st.integers(min_value=1, max_value=64))
    def test_split_extent_sums_to_extent(self, extent, parts):
        pieces = split_extent(extent, parts)
        assert sum(pieces) == extent
        assert len(pieces) == parts
        assert max(pieces) - min(pieces) <= 1

    @given(st.integers(min_value=1, max_value=10000), st.integers(min_value=1, max_value=64))
    def test_block_bounds_partition_the_extent(self, extent, parts):
        cursor = 0
        for index in range(parts):
            bounds = block_bounds(extent, parts, index)
            assert bounds.start == cursor
            cursor = bounds.stop
        assert cursor == extent

    @given(st.integers(min_value=1, max_value=2000), st.integers(min_value=1, max_value=32),
           intervals)
    @settings(max_examples=200)
    def test_block_index_range_matches_bruteforce(self, extent, parts, query):
        parts = min(parts, extent)
        lo, hi = block_index_range(extent, parts, query)
        brute = [
            index for index in range(parts)
            if block_bounds(extent, parts, index).overlaps(query)
        ]
        assert list(range(lo, hi)) == brute


class TestRectProperties:
    rects = st.builds(
        lambda r, c: Rect(r, c),
        intervals, intervals,
    )

    @given(rects, rects)
    def test_rect_intersection_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(rects)
    def test_size_is_product_of_extents(self, rect):
        assert rect.size == rect.rows.extent * rect.cols.extent

    @given(rects, rects)
    def test_intersection_contained(self, a, b):
        overlap = a.intersect(b)
        if overlap:
            assert a.contains(overlap) and b.contains(overlap)
