"""Property-based end-to-end tests: random partitionings must still multiply correctly.

These are the highest-value properties in the suite: for *any* combination of
operand partitionings (including randomly generated misaligned custom tile
boundaries), replication factors, and data-movement strategies, the universal
algorithm must produce exactly ``A @ B``, and its generated op list must tile
the m x k x n iteration space exactly once.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import ExecutionConfig
from repro.core.matmul import universal_matmul
from repro.core.slicing import check_coverage, generate_all_ops
from repro.core.stationary import Stationary
from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import Block2D, ColumnBlock, CustomTiles, RowBlock
from repro.runtime.runtime import Runtime
from repro.topology.machines import uniform_system


@st.composite
def custom_partition(draw, extent_rows, extent_cols):
    """A CustomTiles partition with random interior cut points."""

    def cuts(extent):
        count = draw(st.integers(min_value=0, max_value=3))
        interior = draw(st.lists(st.integers(min_value=1, max_value=extent - 1),
                                 min_size=count, max_size=count, unique=True))
        return [0] + sorted(interior) + [extent]

    return CustomTiles(cuts(extent_rows), cuts(extent_cols))


@st.composite
def partition_for(draw, rows, cols):
    kind = draw(st.sampled_from(["row", "column", "block", "custom"]))
    if kind == "row":
        return RowBlock()
    if kind == "column":
        return ColumnBlock()
    if kind == "block":
        return Block2D()
    return draw(custom_partition(rows, cols))


@st.composite
def matmul_case(draw):
    num_ranks = draw(st.sampled_from([2, 3, 4, 6]))
    m = draw(st.integers(min_value=6, max_value=40))
    n = draw(st.integers(min_value=6, max_value=40))
    k = draw(st.integers(min_value=6, max_value=40))
    divisors = [c for c in range(1, num_ranks + 1) if num_ranks % c == 0]
    rep = tuple(draw(st.sampled_from(divisors)) for _ in range(3))
    stationary = draw(st.sampled_from(list(Stationary)))
    part_a = draw(partition_for(m, k))
    part_b = draw(partition_for(k, n))
    part_c = draw(partition_for(m, n))
    return num_ranks, m, n, k, rep, stationary, part_a, part_b, part_c


class TestUniversalMatmulProperties:
    @given(matmul_case())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_random_configuration_produces_exact_product(self, case):
        num_ranks, m, n, k, rep, stationary, part_a, part_b, part_c = case
        runtime = Runtime(machine=uniform_system(num_ranks))
        rng = np.random.default_rng(17)
        a_dense = rng.standard_normal((m, k))
        b_dense = rng.standard_normal((k, n))
        a = DistributedMatrix.from_dense(runtime, a_dense, part_a, replication=rep[0],
                                         name="A")
        b = DistributedMatrix.from_dense(runtime, b_dense, part_b, replication=rep[1],
                                         name="B")
        c = DistributedMatrix.create(runtime, (m, n), part_c, replication=rep[2],
                                     dtype=np.float64, name="C")
        universal_matmul(a, b, c, stationary=stationary,
                         config=ExecutionConfig(validate_ops=True))
        np.testing.assert_allclose(c.to_dense(0), a_dense @ b_dense, rtol=1e-9, atol=1e-9)

    @given(matmul_case())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_op_generation_covers_iteration_space_exactly_once(self, case):
        num_ranks, m, n, k, rep, stationary, part_a, part_b, part_c = case
        runtime = Runtime(machine=uniform_system(num_ranks))
        a = DistributedMatrix.create(runtime, (m, k), part_a, replication=rep[0],
                                     name="A", materialize=False)
        b = DistributedMatrix.create(runtime, (k, n), part_b, replication=rep[1],
                                     name="B", materialize=False)
        c = DistributedMatrix.create(runtime, (m, n), part_c, replication=rep[2],
                                     name="C", materialize=False)
        ops = generate_all_ops(a, b, c, stationary)
        check_coverage(a, b, c, ops)

    @given(matmul_case())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_flops_conserved_across_ranks(self, case):
        """The sum of per-op FLOPs must equal 2*m*n*k regardless of distribution."""
        num_ranks, m, n, k, rep, stationary, part_a, part_b, part_c = case
        runtime = Runtime(machine=uniform_system(num_ranks))
        a = DistributedMatrix.create(runtime, (m, k), part_a, replication=rep[0],
                                     name="A", materialize=False)
        b = DistributedMatrix.create(runtime, (k, n), part_b, replication=rep[1],
                                     name="B", materialize=False)
        c = DistributedMatrix.create(runtime, (m, n), part_c, replication=rep[2],
                                     name="C", materialize=False)
        ops = generate_all_ops(a, b, c, stationary)
        total = sum(op.flops for rank_ops in ops.values() for op in rank_ops)
        assert total == 2 * m * n * k
