"""Property-based invariants of the unified event engine.

Three families of properties, as demanded by the engine's contract:

1. **Timeline sanity** — per-engine occupancy intervals are monotone and
   non-overlapping (engines are single-server queues), and every realized
   event respects its recorded dependencies.
2. **Bound sandwich** — for any workload/config, the critical-path lower
   bound never exceeds the simulated time, which never exceeds the summed
   busy time across all engines (the schedule has no globally idle instant
   before the makespan).
3. **Baseline parity** — the baselines' event traces reproduce their
   retained closed-form models.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import Cannon, CosmaLike, OneAndHalfD, OneDRing, Summa, TwoAndHalfD
from repro.bench.schemes import ua_schemes
from repro.bench.sweep import run_ua_point
from repro.bench.workloads import Workload
from repro.core.config import ExecutionConfig
from repro.core.cost_model import CostModel
from repro.core.direct import DirectExecutor
from repro.core.matmul import model_reduce_time, plan_ops
from repro.core.slicing import apply_iteration_offset
from repro.dist.matrix import DistributedMatrix
from repro.runtime.clock import ENGINES
from repro.sim import EventEngine
from repro.topology.machines import GB, uniform_system

_SCHEMES = {scheme.name: scheme for scheme in ua_schemes()}


@st.composite
def sim_case(draw):
    num_devices = draw(st.sampled_from([2, 4, 6]))
    workload = Workload(
        name="prop",
        m=draw(st.integers(min_value=8, max_value=96)),
        n=draw(st.integers(min_value=8, max_value=96)),
        k=draw(st.integers(min_value=8, max_value=96)),
    )
    scheme = draw(st.sampled_from(sorted(_SCHEMES)))
    divisors = [c for c in range(1, num_devices + 1) if num_devices % c == 0]
    replication = draw(st.sampled_from(divisors))
    stationary = draw(st.sampled_from(["A", "B", "C"]))
    link_gb = draw(st.sampled_from([2, 25, 400]))
    config = ExecutionConfig(
        simulate_only=True,
        prefetch_depth=draw(st.integers(min_value=0, max_value=3)),
        async_execution=draw(st.booleans()),
        iteration_offset=draw(st.booleans()),
    )
    return num_devices, workload, scheme, replication, stationary, link_gb, config


def _simulate(case):
    num_devices, workload, scheme, replication, stationary, link_gb, config = case
    machine = uniform_system(num_devices, link_bandwidth=link_gb * GB)
    point = run_ua_point(machine, workload, _SCHEMES[scheme],
                         (replication, replication, replication),
                         stationary, config)
    return machine, point


def _build_executor(case, contention=True):
    num_devices, workload, scheme, replication, stationary, link_gb, config = case
    machine = uniform_system(num_devices, link_bandwidth=link_gb * GB)
    from repro.runtime.runtime import Runtime

    runtime = Runtime(machine=machine)
    p = machine.num_devices
    rep = replication
    part_a, part_b, part_c = _SCHEMES[scheme].partitions(
        workload, p // rep, p // rep, p // rep
    )
    a_shape, b_shape, c_shape = workload.shapes
    a = DistributedMatrix.create(runtime, a_shape, part_a, replication=rep,
                                 name="A", materialize=False)
    b = DistributedMatrix.create(runtime, b_shape, part_b, replication=rep,
                                 name="B", materialize=False)
    c = DistributedMatrix.create(runtime, c_shape, part_c, replication=rep,
                                 name="C", materialize=False)
    per_rank_ops = plan_ops(a, b, c, stationary=stationary)
    if config.iteration_offset:
        per_rank_ops = {rank: apply_iteration_offset(ops)
                        for rank, ops in per_rank_ops.items()}
    engine = EventEngine(machine.num_devices, contention=contention)
    executor = DirectExecutor(a, b, c, CostModel(machine), config, engine=engine)
    return a, b, c, per_rank_ops, engine, executor


class TestTimelineInvariants:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(case=sim_case())
    def test_timelines_monotone_and_non_overlapping(self, case):
        a, b, c, per_rank_ops, engine, executor = _build_executor(case)
        executor.execute(per_rank_ops)
        for device in range(engine.num_devices):
            timeline = engine.clock.device(device)
            for name in ENGINES:
                entries = sorted(timeline.entries(name), key=lambda e: e.start)
                for entry in entries:
                    assert entry.end >= entry.start
                for earlier, later in zip(entries, entries[1:]):
                    assert earlier.end <= later.start, (
                        f"overlap on device {device} engine {name}"
                    )

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(case=sim_case())
    def test_events_respect_dependencies(self, case):
        a, b, c, per_rank_ops, engine, executor = _build_executor(case)
        executor.execute(per_rank_ops)
        by_uid = {event.uid: event for event in engine.events}
        for event in engine.events:
            for parent in event.parents:
                assert by_uid[parent].end <= event.start or math.isclose(
                    by_uid[parent].end, event.start, rel_tol=1e-12
                )


class TestBoundSandwich:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(case=sim_case())
    def test_critical_path_bound_le_simulated_le_total_busy(self, case):
        machine, point = _simulate(case)
        config = case[-1]

        a, b, c, per_rank_ops, _, _ = _build_executor(case)
        cost_model = CostModel(machine)
        bound = cost_model.critical_path_lower_bound(a, b, c, per_rank_ops, config)
        bound += model_reduce_time(c, cost_model)
        assert bound <= point.simulated_time * (1 + 1e-12)

        # Upper half of the sandwich: the schedule is never globally idle
        # before the makespan, so the contended run's summed busy time
        # dominates it.
        a2, b2, c2, ops2, engine2, executor2 = _build_executor(case)
        makespan, _ = executor2.execute(ops2)
        assert makespan <= engine2.total_busy_time() * (1 + 1e-12)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(case=sim_case())
    def test_occupancy_bound_never_tighter_than_critical_path(self, case):
        a, b, c, per_rank_ops, _, _ = _build_executor(case)
        machine = a.runtime.machine
        config = case[-1]
        cost_model = CostModel(machine)
        occupancy = cost_model.direct_lower_bound(
            a, b, c, per_rank_ops, cache_remote_tiles=config.cache_remote_tiles
        )
        critical = cost_model.critical_path_lower_bound(a, b, c, per_rank_ops, config)
        assert critical >= occupancy * (1 - 1e-12)


class TestBaselineEventParity:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        m=st.integers(min_value=64, max_value=4096),
        n=st.integers(min_value=64, max_value=4096),
        k=st.integers(min_value=64, max_value=4096),
        devices=st.sampled_from([4, 8, 16]),
        link_gb=st.sampled_from([5, 50, 400]),
        algorithm=st.sampled_from([
            OneDRing(), Summa(), Cannon(), OneAndHalfD(2), TwoAndHalfD(2),
            CosmaLike(), Summa(overlap=False), OneDRing(overlap=False),
        ]),
    )
    def test_event_trace_matches_closed_form(self, m, n, k, devices, link_gb,
                                             algorithm):
        machine = uniform_system(devices, link_bandwidth=link_gb * GB)
        closed = algorithm.simulate(m, n, k, machine).simulated_time
        traced = algorithm.simulate_events(m, n, k, machine).makespan()
        assert math.isclose(traced, closed, rel_tol=1e-9), (
            algorithm.name, closed, traced
        )
