"""Property-based pins of the structured-sparsity cost surface.

Three families of properties, matching the guarantees the planner relies on:

1. **Dense-envelope dominance** — a block-sparse or MoE-ragged workload does
   a subset of its envelope's work, and every structured duration is the
   dense duration scaled by a live fraction in ``[0, 1]``, so the simulated
   time can never exceed the dense envelope's under the same configuration.
2. **Monotonicity in density** — adding live blocks (or routed tokens) never
   makes a workload cheaper under the occupancy pricing (per-engine summed
   durations over a live-subset op stream — provably monotone).  The
   *contended* makespan is only monotone up to a scheduling tolerance:
   dropping masked ops reshuffles contention slots, and list scheduling is
   famously non-monotone under such perturbations (Graham's anomalies), so
   a sparser sibling can finish slightly later than its superset.
3. **Admissibility on sparse inputs** — both planner pruning bounds
   (occupancy and critical-path) stay at or below the simulated makespan for
   structured workloads, which is what makes the pruned sparse search return
   the exhaustive ranking.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.schemes import ua_schemes
from repro.bench.sweep import run_ua_point
from repro.bench.workloads import Workload
from repro.core.config import ExecutionConfig
from repro.core.structure import BlockSparse, MoERagged
from repro.planner.search import (
    BOUND_CRITICAL_PATH,
    BOUND_OCCUPANCY,
    Candidate,
    candidate_lower_bound,
)
from repro.topology.machines import GB, uniform_system

_SCHEMES = {scheme.name: scheme for scheme in ua_schemes()}


def _mask_from_cells(k_blocks, n_blocks, cells):
    chosen = set(cells)
    return tuple(
        tuple((row * n_blocks + col) in chosen for col in range(n_blocks))
        for row in range(k_blocks)
    )


@st.composite
def machine_and_config(draw):
    num_devices = draw(st.sampled_from([2, 4]))
    link_gb = draw(st.sampled_from([2, 25, 400]))
    machine = uniform_system(num_devices, link_bandwidth=link_gb * GB)
    config = ExecutionConfig(
        simulate_only=True,
        prefetch_depth=draw(st.integers(min_value=0, max_value=3)),
        async_execution=draw(st.booleans()),
        iteration_offset=draw(st.booleans()),
    )
    divisors = [c for c in range(1, num_devices + 1) if num_devices % c == 0]
    replication = draw(st.sampled_from(divisors))
    scheme = draw(st.sampled_from(sorted(_SCHEMES)))
    stationary = draw(st.sampled_from(["A", "B", "C"]))
    return machine, config, scheme, replication, stationary


@st.composite
def sparse_pair(draw):
    """A structured workload plus a strictly-not-sparser sibling.

    Returns ``(lean, rich)`` where ``rich``'s live set contains ``lean``'s —
    the nested pair the monotonicity property quantifies over.  ``rich`` may
    equal the full envelope.
    """
    m = draw(st.integers(min_value=2, max_value=10)) * 8
    n = draw(st.integers(min_value=2, max_value=10)) * 8
    k = draw(st.integers(min_value=2, max_value=10)) * 8
    if draw(st.booleans()):
        block_k = draw(st.sampled_from([8, 16, 32]))
        block_n = draw(st.sampled_from([8, 16, 32]))
        k_blocks = -(-k // block_k)
        n_blocks = -(-n // block_n)
        total = k_blocks * n_blocks
        lean_live = draw(st.integers(min_value=1, max_value=total))
        rich_live = draw(st.integers(min_value=lean_live, max_value=total))
        order = list(range(total))
        random.Random(draw(st.integers(min_value=0, max_value=2**32))).shuffle(order)
        lean = BlockSparse(block_k, block_n,
                           _mask_from_cells(k_blocks, n_blocks, order[:lean_live]))
        rich = BlockSparse(block_k, block_n,
                           _mask_from_cells(k_blocks, n_blocks, order[:rich_live]))
    else:
        experts = draw(st.sampled_from([2, 4]))
        capacity = max(1, m // experts)
        m = experts * capacity
        rich_tokens = draw(st.lists(st.integers(min_value=0, max_value=capacity),
                                    min_size=experts, max_size=experts))
        lean_tokens = [draw(st.integers(min_value=0, max_value=tokens))
                       for tokens in rich_tokens]
        if sum(lean_tokens) == 0:
            lean_tokens[0] = 1
            rich_tokens[0] = max(rich_tokens[0], 1)
        lean = MoERagged(tuple(lean_tokens), capacity)
        rich = MoERagged(tuple(rich_tokens), capacity)
    return (Workload("lean", m, n, k, structure=lean),
            Workload("rich", m, n, k, structure=rich))


def _simulate(machine, workload, scheme, replication, stationary, config):
    point = run_ua_point(machine, workload, _SCHEMES[scheme],
                         (replication, replication, replication),
                         stationary, config)
    return point.simulated_time


class TestDenseEnvelopeDominance:
    # Derandomized: contended-makespan comparisons are deterministic in CI
    # (strict dominance held over 800+ randomized probes during development,
    # but list scheduling gives no hard guarantee against rare anomalies).
    @settings(max_examples=50, deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])
    @given(env=machine_and_config(), pair=sparse_pair())
    def test_sparse_never_exceeds_dense_envelope(self, env, pair):
        machine, config, scheme, replication, stationary = env
        lean, _ = pair
        envelope = Workload("env", lean.m, lean.n, lean.k)
        sparse_time = _simulate(machine, lean, scheme, replication, stationary, config)
        dense_time = _simulate(machine, envelope, scheme, replication, stationary, config)
        assert sparse_time <= dense_time * (1 + 1e-12), (lean.structure, sparse_time,
                                                         dense_time)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(env=machine_and_config(), pair=sparse_pair())
    def test_effective_flops_dominated_by_envelope(self, env, pair):
        del env
        lean, rich = pair
        assert 0.0 < lean.effective_flops <= rich.effective_flops <= lean.flops


class TestDensityMonotonicity:
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(env=machine_and_config(), pair=sparse_pair())
    def test_more_live_work_never_cheaper_under_occupancy_pricing(self, env, pair):
        """Strictly monotone: the occupancy bound sums per-engine durations
        over the live op subset, and every term grows with the live set."""
        machine, config, scheme, replication, stationary = env
        lean, rich = pair
        def occupancy(workload):
            candidate = Candidate(index=0, scheme=_SCHEMES[scheme],
                                  replication=(replication, replication, replication),
                                  stationary=stationary, memory_per_device=0)
            return candidate_lower_bound(machine, workload, candidate, config,
                                         BOUND_OCCUPANCY)
        assert occupancy(lean) <= occupancy(rich) * (1 + 1e-12), (lean.structure,
                                                                  rich.structure)

    @settings(max_examples=50, deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])
    @given(env=machine_and_config(), pair=sparse_pair())
    def test_simulated_makespan_monotone_within_scheduling_tolerance(self, env, pair):
        """The contended makespan tracks the live set up to list-scheduling
        anomalies: sparser op streams occasionally land contention slots
        worse (observed ~1% excess), so the property allows a 5% margin.
        Derandomized: the margin covers anomalies on this example corpus;
        exhaustive strictness is what the occupancy property above pins."""
        machine, config, scheme, replication, stationary = env
        lean, rich = pair
        lean_time = _simulate(machine, lean, scheme, replication, stationary, config)
        rich_time = _simulate(machine, rich, scheme, replication, stationary, config)
        assert lean_time <= rich_time * 1.05, (lean.structure, rich.structure)


class TestSparseBoundAdmissibility:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(env=machine_and_config(), pair=sparse_pair())
    def test_both_bounds_below_simulated_time(self, env, pair):
        machine, config, scheme, replication, stationary = env
        workload, _ = pair
        candidate = Candidate(index=0, scheme=_SCHEMES[scheme],
                              replication=(replication, replication, replication),
                              stationary=stationary, memory_per_device=0)
        simulated = _simulate(machine, workload, scheme, replication, stationary,
                              config)
        for bound in (BOUND_OCCUPANCY, BOUND_CRITICAL_PATH):
            value = candidate_lower_bound(machine, workload, candidate, config, bound)
            assert value <= simulated * (1 + 1e-12), (bound, value, simulated,
                                                      workload.structure)

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(env=machine_and_config(), pair=sparse_pair())
    def test_critical_path_dominates_occupancy_on_sparse(self, env, pair):
        machine, config, scheme, replication, stationary = env
        workload, _ = pair
        candidate = Candidate(index=0, scheme=_SCHEMES[scheme],
                              replication=(replication, replication, replication),
                              stationary=stationary, memory_per_device=0)
        occupancy = candidate_lower_bound(machine, workload, candidate, config,
                                          BOUND_OCCUPANCY)
        critical = candidate_lower_bound(machine, workload, candidate, config,
                                         BOUND_CRITICAL_PATH)
        assert critical >= occupancy * (1 - 1e-12)
