"""Property-based tests of tile grids and replication (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.replication import ReplicationSpec
from repro.dist.tile_grid import TileGrid
from repro.util.indexing import Interval, Rect


@st.composite
def splits(draw, max_extent=400, max_cuts=8):
    """A strictly increasing split list starting at 0."""
    extent = draw(st.integers(min_value=1, max_value=max_extent))
    if extent == 1:
        return [0, 1]
    num_cuts = draw(st.integers(min_value=0, max_value=min(max_cuts, extent - 1)))
    interior = draw(st.lists(st.integers(min_value=1, max_value=extent - 1),
                             min_size=num_cuts, max_size=num_cuts, unique=True))
    return [0] + sorted(interior) + [extent]


@st.composite
def grids(draw):
    return TileGrid(draw(splits()), draw(splits()))


@st.composite
def rect_within(draw, shape):
    rows, cols = shape
    r0 = draw(st.integers(min_value=0, max_value=rows))
    r1 = draw(st.integers(min_value=r0, max_value=rows))
    c0 = draw(st.integers(min_value=0, max_value=cols))
    c1 = draw(st.integers(min_value=c0, max_value=cols))
    return Rect(Interval(r0, r1), Interval(c0, c1))


class TestTileGridProperties:
    @given(grids())
    @settings(max_examples=100)
    def test_tiles_partition_the_matrix(self, grid):
        total = sum(grid.tile_bounds(idx).size for idx in grid.tiles())
        rows, cols = grid.matrix_shape
        assert total == rows * cols

    @given(grids().flatmap(lambda g: st.tuples(st.just(g), rect_within(g.matrix_shape))))
    @settings(max_examples=150)
    def test_overlapping_tiles_matches_bruteforce(self, grid_and_rect):
        grid, rect = grid_and_rect
        fast = set(grid.overlapping_tiles(rect))
        brute = {idx for idx in grid.tiles() if grid.tile_bounds(idx).overlaps(rect)}
        assert fast == brute

    @given(grids().flatmap(lambda g: st.tuples(st.just(g), rect_within(g.matrix_shape))))
    @settings(max_examples=100)
    def test_overlap_area_covers_query(self, grid_and_rect):
        """The union of (tile ∩ query) areas equals the query area."""
        grid, rect = grid_and_rect
        covered = sum(
            grid.tile_bounds(idx).intersect(rect).size
            for idx in grid.overlapping_tiles(rect)
        )
        assert covered == rect.size


class TestReplicationProperties:
    @given(st.integers(min_value=1, max_value=64).flatmap(
        lambda p: st.tuples(st.just(p), st.sampled_from(
            [c for c in range(1, p + 1) if p % c == 0]))))
    def test_rank_mapping_is_a_bijection(self, p_and_c):
        p, c = p_and_c
        spec = ReplicationSpec(p, c)
        seen = set()
        for replica in range(c):
            for position in range(spec.ranks_per_replica):
                seen.add(spec.rank_of(replica, position))
        assert seen == set(range(p))

    @given(st.integers(min_value=1, max_value=64).flatmap(
        lambda p: st.tuples(st.just(p), st.sampled_from(
            [c for c in range(1, p + 1) if p % c == 0]),
            st.integers(min_value=0, max_value=10000))))
    def test_work_shares_tile_the_extent(self, args):
        p, c, extent = args
        spec = ReplicationSpec(p, c)
        cursor = 0
        for replica in range(c):
            start, stop = spec.work_share(replica, extent)
            assert start == cursor
            cursor = stop
        assert cursor == extent
