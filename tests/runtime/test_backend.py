"""Unit tests for the SPMD execution backends."""

import threading

import pytest

from repro.runtime.backend import (
    Backend,
    SequentialBackend,
    ThreadedBackend,
    make_backend,
)


class TestSequentialBackend:
    def test_runs_in_rank_order(self):
        backend = SequentialBackend()
        order = []
        results = backend.run([lambda i=i: order.append(i) or i for i in range(4)])
        assert order == [0, 1, 2, 3]
        assert results == [0, 1, 2, 3]

    def test_barrier_is_noop(self):
        backend = SequentialBackend()
        barrier = backend.make_barrier(4)
        barrier()  # must not block

    def test_exception_propagates(self):
        backend = SequentialBackend()

        def boom():
            raise ValueError("bad")

        with pytest.raises(ValueError):
            backend.run([boom])


class TestThreadedBackend:
    def test_collects_results(self):
        backend = ThreadedBackend()
        results = backend.run([lambda i=i: i * i for i in range(5)])
        assert results == [0, 1, 4, 9, 16]

    def test_runs_concurrently_through_barrier(self):
        backend = ThreadedBackend()
        barrier = backend.make_barrier(3)
        hits = []
        lock = threading.Lock()

        def worker(i):
            barrier.__call__() if callable(barrier) else None
            with lock:
                hits.append(i)
            return i

        results = backend.run([lambda i=i: worker(i) for i in range(3)])
        assert sorted(results) == [0, 1, 2]
        assert sorted(hits) == [0, 1, 2]

    def test_failure_identifies_rank(self):
        backend = ThreadedBackend()

        def good():
            return 1

        def bad():
            raise RuntimeError("inner failure")

        with pytest.raises(RuntimeError, match="rank 1 failed"):
            backend.run([good, bad])

    def test_name(self):
        assert ThreadedBackend().name == "threaded"


class TestMakeBackend:
    def test_sequential(self):
        assert isinstance(make_backend("sequential"), SequentialBackend)

    def test_threaded(self):
        assert isinstance(make_backend("threaded"), ThreadedBackend)

    def test_case_insensitive(self):
        assert isinstance(make_backend("Sequential"), SequentialBackend)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_backend("mpi")

    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            Backend()  # type: ignore[abstract]
