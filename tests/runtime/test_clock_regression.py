"""Regression pin for the sorted-at-insert DeviceTimeline.

``DeviceTimeline.find_slot`` used to re-sort its entries list on every call;
the timeline now keeps entries sorted at insertion (``bisect.insort``) and
the scan runs sort-free.  The optimization must be invisible: on any
interleaving of FIFO reservations, capacity-slot reservations, and slot
queries, every returned ``(start, end)`` placement must be identical to the
old sort-per-call implementation's.  This test replays randomized mixed
sequences against a faithful reimplementation of the old discipline.
"""

import random

import pytest

from repro.runtime.clock import ENGINES, DeviceTimeline


class _SortPerCallTimeline:
    """The pre-optimization reference: append unsorted, sort in find_slot."""

    def __init__(self) -> None:
        self._available = {name: 0.0 for name in ENGINES}
        self._entries = {name: [] for name in ENGINES}

    def reserve(self, engine, duration, earliest_start=0.0):
        start = max(earliest_start, self._available[engine])
        end = start + duration
        self._available[engine] = end
        self._entries[engine].append((start, end))
        return start, end

    def find_slot(self, engine, duration, earliest_start=0.0):
        cursor = earliest_start
        for start, end in sorted(self._entries[engine]):
            if start - cursor >= duration:
                break
            cursor = max(cursor, end)
        return cursor

    def reserve_slot(self, engine, duration, earliest_start=0.0):
        start = self.find_slot(engine, duration, earliest_start)
        end = start + duration
        self._entries[engine].append((start, end))
        self._available[engine] = max(self._available[engine], end)
        return start, end


@pytest.mark.parametrize("seed", range(20))
def test_mixed_sequences_place_identically(seed):
    rng = random.Random(seed)
    new = DeviceTimeline(0)
    old = _SortPerCallTimeline()
    for step in range(300):
        engine = rng.choice(ENGINES)
        duration = rng.choice([0.0, rng.uniform(0.0, 3.0)])
        earliest = rng.uniform(0.0, 50.0)
        op = rng.choice(["reserve", "reserve_slot", "find_slot"])
        if op == "reserve":
            got = new.reserve(engine, duration, earliest)
            want = old.reserve(engine, duration, earliest)
        elif op == "reserve_slot":
            got = new.reserve_slot(engine, duration, earliest)
            want = old.reserve_slot(engine, duration, earliest)
        else:
            got = new.find_slot(engine, duration, earliest)
            want = old.find_slot(engine, duration, earliest)
        assert got == want, (seed, step, op, engine, duration, earliest)
    for engine in ENGINES:
        assert new.available_at(engine) == old._available[engine]
        placements = [(e.start, e.end) for e in new.entries(engine)]
        assert placements == sorted(placements, key=lambda p: p[0])
        assert sorted(placements) == sorted(old._entries[engine])


def test_fifo_after_slot_insert_keeps_sorted_order():
    """A FIFO reserve landing earlier than a late out-of-order slot entry
    must be insorted, not appended — the exact case the guard covers."""
    timeline = DeviceTimeline(0)
    timeline.reserve_slot("ingress", 1.0, earliest_start=100.0)
    start, end = timeline.reserve("ingress", 1.0, earliest_start=0.0)
    assert (start, end) == (101.0, 102.0)  # FIFO: after available_at
    timeline2 = DeviceTimeline(0)
    timeline2.reserve("egress", 1.0, earliest_start=10.0)
    timeline2.reserve_slot("egress", 2.0, earliest_start=0.0)
    starts = [e.start for e in timeline2.entries("egress")]
    assert starts == sorted(starts)
    # The slot entry fills [0, 2); the next 1.0 gap opens right after it,
    # before the FIFO entry at [10, 11) — found without any re-sort.
    assert timeline2.find_slot("egress", 1.0, 0.0) == 2.0
