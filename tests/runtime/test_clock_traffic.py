"""Unit tests for simulated-time bookkeeping and traffic accounting."""

import pytest

from repro.runtime.clock import ACCUMULATE, COMPUTE, COPY, DeviceTimeline, SimClock
from repro.runtime.traffic import ACCUMULATE as ACC_KIND
from repro.runtime.traffic import GET, PUT, TrafficCounter, TransferRecord


class TestDeviceTimeline:
    def test_serialises_same_engine(self):
        timeline = DeviceTimeline(0)
        first = timeline.reserve(COMPUTE, 1.0)
        second = timeline.reserve(COMPUTE, 2.0)
        assert first == (0.0, 1.0)
        assert second == (1.0, 3.0)

    def test_engines_are_independent(self):
        timeline = DeviceTimeline(0)
        timeline.reserve(COMPUTE, 5.0)
        copy = timeline.reserve(COPY, 1.0)
        assert copy == (0.0, 1.0)

    def test_earliest_start_respected(self):
        timeline = DeviceTimeline(0)
        start, end = timeline.reserve(COMPUTE, 1.0, earliest_start=10.0)
        assert (start, end) == (10.0, 11.0)

    def test_busy_time(self):
        timeline = DeviceTimeline(0)
        timeline.reserve(ACCUMULATE, 2.0)
        timeline.reserve(ACCUMULATE, 3.0, earliest_start=100.0)
        assert timeline.busy_time(ACCUMULATE) == pytest.approx(5.0)

    def test_finish_time_is_max_over_engines(self):
        timeline = DeviceTimeline(0)
        timeline.reserve(COMPUTE, 2.0)
        timeline.reserve(COPY, 7.0)
        assert timeline.finish_time() == pytest.approx(7.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            DeviceTimeline(0).reserve(COMPUTE, -1.0)

    def test_reset(self):
        timeline = DeviceTimeline(0)
        timeline.reserve(COMPUTE, 1.0)
        timeline.reset()
        assert timeline.finish_time() == 0.0
        assert timeline.entries(COMPUTE) == []


class TestSimClock:
    def test_makespan_is_slowest_device(self):
        clock = SimClock(3)
        clock.device(0).reserve(COMPUTE, 1.0)
        clock.device(2).reserve(COMPUTE, 4.0)
        assert clock.makespan() == pytest.approx(4.0)

    def test_link_reservation_serialises(self):
        clock = SimClock(2)
        first = clock.reserve_link(0, 1, 2.0)
        second = clock.reserve_link(0, 1, 1.0)
        assert first == (0.0, 2.0)
        assert second == (2.0, 3.0)

    def test_different_links_independent(self):
        clock = SimClock(3)
        clock.reserve_link(0, 1, 5.0)
        other = clock.reserve_link(1, 2, 1.0)
        assert other == (0.0, 1.0)

    def test_invalid_device_count(self):
        with pytest.raises(ValueError):
            SimClock(0)

    def test_reset(self):
        clock = SimClock(2)
        clock.device(0).reserve(COMPUTE, 1.0)
        clock.reserve_link(0, 1, 1.0)
        clock.reset()
        assert clock.makespan() == 0.0
        assert clock.reserve_link(0, 1, 1.0) == (0.0, 1.0)


class TestTrafficCounter:
    def test_records_bytes_by_kind(self):
        counter = TrafficCounter()
        counter.record(TransferRecord(GET, 0, 1, 100))
        counter.record(TransferRecord(PUT, 1, 0, 50))
        counter.record(TransferRecord(ACC_KIND, 2, 0, 25))
        assert counter.total_bytes(GET) == 100
        assert counter.total_bytes(PUT) == 50
        assert counter.total_bytes(ACC_KIND) == 25
        assert counter.total_bytes() == 175

    def test_remote_only_excludes_local(self):
        counter = TrafficCounter()
        counter.record(TransferRecord(GET, 0, 0, 100))
        counter.record(TransferRecord(GET, 0, 1, 40))
        assert counter.total_bytes(GET, remote_only=True) == 40
        assert counter.remote_bytes() == 40

    def test_operation_count(self):
        counter = TrafficCounter()
        for _ in range(3):
            counter.record(TransferRecord(GET, 0, 1, 10))
        assert counter.operation_count(GET) == 3
        assert counter.operation_count() == 3

    def test_bytes_by_initiator(self):
        counter = TrafficCounter()
        counter.record(TransferRecord(GET, 0, 1, 10))
        counter.record(TransferRecord(GET, 2, 1, 30))
        counter.record(TransferRecord(PUT, 0, 1, 5))
        assert counter.bytes_by_initiator() == {0: 15, 2: 30}

    def test_unknown_kind_rejected(self):
        counter = TrafficCounter()
        with pytest.raises(ValueError):
            counter.record(TransferRecord("teleport", 0, 1, 10))

    def test_reset(self):
        counter = TrafficCounter()
        counter.record(TransferRecord(GET, 0, 1, 10))
        counter.reset()
        assert counter.total_bytes() == 0
        assert counter.records == []

    def test_summary_keys(self):
        counter = TrafficCounter()
        counter.record(TransferRecord(GET, 0, 1, 10))
        summary = counter.summary()
        assert summary["get_bytes"] == 10
        assert summary["total_bytes"] == 10
        assert summary["total_remote_bytes"] == 10

    def test_no_record_retention_mode(self):
        counter = TrafficCounter(keep_records=False)
        counter.record(TransferRecord(GET, 0, 1, 10))
        assert counter.records == []
        assert counter.total_bytes() == 10
