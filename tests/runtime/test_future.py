"""Unit tests for futures returned by asynchronous one-sided operations."""

import pytest

from repro.runtime.future import CompletedFuture, Future


class TestFuture:
    def test_starts_pending(self):
        future = Future("f")
        assert not future.done()

    def test_set_result_and_wait(self):
        future = Future()
        future.set_result(42)
        assert future.done()
        assert future.wait() == 42

    def test_result_alias(self):
        future = Future()
        future.set_result("x")
        assert future.result() == "x"

    def test_double_completion_rejected(self):
        future = Future()
        future.set_result(1)
        with pytest.raises(RuntimeError):
            future.set_result(2)

    def test_exception_propagates(self):
        future = Future()
        future.set_exception(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            future.wait()

    def test_timeout(self):
        future = Future("slow")
        with pytest.raises(TimeoutError):
            future.wait(timeout=0.01)

    def test_callback_after_completion(self):
        future = Future()
        seen = []
        future.set_result(3)
        future.add_done_callback(lambda f: seen.append(f.wait()))
        assert seen == [3]

    def test_callback_before_completion(self):
        future = Future()
        seen = []
        future.add_done_callback(lambda f: seen.append(f.wait()))
        assert seen == []
        future.set_result(9)
        assert seen == [9]

    def test_metadata_fields_default(self):
        future = Future()
        assert future.sim_ready_time == 0.0
        assert future.nbytes == 0


class TestCompletedFuture:
    def test_is_done_immediately(self):
        future = CompletedFuture([1, 2, 3])
        assert future.done()
        assert future.wait() == [1, 2, 3]

    def test_description(self):
        assert CompletedFuture(None, description="local").description == "local"
