"""Unit tests for the symmetric heap and the memory pool."""

import numpy as np
import pytest

from repro.runtime.memory import MemoryPool, SymmetricHeap, make_handle


class TestSymmetricHandle:
    def test_nbytes(self):
        handle = make_handle((4, 8), np.float32)
        assert handle.nbytes == 4 * 8 * 4

    def test_unique_ids(self):
        a = make_handle((2, 2), np.float32)
        b = make_handle((2, 2), np.float32)
        assert a.alloc_id != b.alloc_id

    def test_dtype_normalised(self):
        handle = make_handle((2, 2), "float64")
        assert handle.dtype == np.dtype(np.float64)


class TestSymmetricHeap:
    def test_register_and_fetch(self):
        heap = SymmetricHeap(rank=0)
        handle = make_handle((3, 3), np.float32)
        array = np.zeros((3, 3), dtype=np.float32)
        heap.register(handle, array)
        assert heap.array(handle) is array
        assert handle in heap
        assert len(heap) == 1

    def test_register_shape_mismatch(self):
        heap = SymmetricHeap(rank=0)
        handle = make_handle((3, 3), np.float32)
        with pytest.raises(ValueError):
            heap.register(handle, np.zeros((2, 2), dtype=np.float32))

    def test_double_register_rejected(self):
        heap = SymmetricHeap(rank=0)
        handle = make_handle((2, 2), np.float32)
        heap.register(handle, np.zeros((2, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            heap.register(handle, np.zeros((2, 2), dtype=np.float32))

    def test_missing_allocation(self):
        heap = SymmetricHeap(rank=1)
        handle = make_handle((2, 2), np.float32)
        with pytest.raises(KeyError):
            heap.array(handle)

    def test_deregister(self):
        heap = SymmetricHeap(rank=0)
        handle = make_handle((2, 2), np.float32)
        heap.register(handle, np.zeros((2, 2), dtype=np.float32))
        heap.deregister(handle)
        assert handle not in heap

    def test_allocated_bytes(self):
        heap = SymmetricHeap(rank=0)
        handle = make_handle((4, 4), np.float64)
        heap.register(handle, np.zeros((4, 4), dtype=np.float64))
        assert heap.allocated_bytes == 4 * 4 * 8

    def test_lock_exists_per_allocation(self):
        heap = SymmetricHeap(rank=0)
        handle = make_handle((2, 2), np.float32)
        heap.register(handle, np.zeros((2, 2), dtype=np.float32))
        lock = heap.lock(handle)
        with lock:
            pass  # acquirable


class TestMemoryPool:
    def test_acquire_returns_correct_shape_and_dtype(self):
        pool = MemoryPool()
        buffer = pool.acquire((5, 7), np.float32)
        assert buffer.shape == (5, 7)
        assert buffer.dtype == np.float32

    def test_release_then_acquire_reuses(self):
        pool = MemoryPool()
        first = pool.acquire((4, 4))
        pool.release(first)
        second = pool.acquire((4, 4))
        assert second is first
        assert pool.stats.reuses == 1

    def test_different_shapes_do_not_alias(self):
        pool = MemoryPool()
        a = pool.acquire((2, 2))
        pool.release(a)
        b = pool.acquire((3, 3))
        assert b is not a

    def test_zero_on_acquire(self):
        pool = MemoryPool(zero_on_acquire=True)
        buffer = pool.acquire((2, 2))
        buffer.fill(5.0)
        pool.release(buffer)
        again = pool.acquire((2, 2))
        assert np.all(again == 0.0)

    def test_max_buffers_per_key_respected(self):
        pool = MemoryPool(max_buffers_per_key=1)
        a = pool.acquire((2, 2))
        b = pool.acquire((2, 2))
        pool.release(a)
        pool.release(b)
        assert pool.retained_bytes == a.nbytes  # only one retained

    def test_stats_track_outstanding(self):
        pool = MemoryPool()
        a = pool.acquire((2, 2))
        b = pool.acquire((2, 2))
        assert pool.stats.outstanding == 2
        assert pool.stats.peak_outstanding == 2
        pool.release(a)
        pool.release(b)
        assert pool.stats.outstanding == 0

    def test_clear_drops_buffers(self):
        pool = MemoryPool()
        pool.release(pool.acquire((8, 8)))
        assert pool.retained_bytes > 0
        pool.clear()
        assert pool.retained_bytes == 0

    def test_negative_max_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(max_buffers_per_key=-1)
