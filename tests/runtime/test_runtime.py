"""Unit tests for the PGAS runtime facade and its one-sided operations."""

import numpy as np
import pytest

from repro.runtime.runtime import Runtime
from repro.topology.machines import pvc_system, uniform_system
from repro.util.indexing import Rect
from repro.util.validation import CommunicationError


@pytest.fixture
def runtime():
    return Runtime(machine=uniform_system(4))


class TestConstruction:
    def test_from_machine(self):
        rt = Runtime(machine=uniform_system(6))
        assert rt.num_ranks == 6

    def test_from_num_ranks_only(self):
        rt = Runtime(num_ranks=3)
        assert rt.num_ranks == 3

    def test_num_ranks_overrides_machine(self):
        rt = Runtime(machine=pvc_system(12), num_ranks=4)
        assert rt.num_ranks == 4
        assert rt.machine.num_devices == 4

    def test_requires_machine_or_ranks(self):
        with pytest.raises(ValueError):
            Runtime()


class TestAllocation:
    def test_symmetric_allocation_on_all_ranks(self, runtime):
        handle = runtime.allocate((2, 3), label="x")
        for rank in range(runtime.num_ranks):
            assert runtime.holds(handle, rank)
            assert runtime.local_view(handle, rank).shape == (2, 3)

    def test_allocation_zero_filled_by_default(self, runtime):
        handle = runtime.allocate((2, 2))
        assert np.all(runtime.local_view(handle, 0) == 0.0)

    def test_allocate_on_subset(self, runtime):
        handle = runtime.allocate_on([1, 3], (2, 2))
        assert runtime.holds(handle, 1)
        assert runtime.holds(handle, 3)
        assert not runtime.holds(handle, 0)

    def test_free(self, runtime):
        handle = runtime.allocate((2, 2))
        runtime.free(handle)
        assert not runtime.holds(handle, 0)

    def test_local_view_is_a_view(self, runtime):
        handle = runtime.allocate((2, 2))
        view = runtime.local_view(handle, 1)
        view[0, 0] = 7.0
        assert runtime.local_view(handle, 1)[0, 0] == 7.0

    def test_pool_per_rank(self, runtime):
        assert runtime.pool(0) is not runtime.pool(1)


class TestOneSidedOps:
    def test_put_then_get(self, runtime):
        handle = runtime.allocate((2, 2))
        data = np.arange(4, dtype=np.float32).reshape(2, 2)
        runtime.put(handle, 2, data, initiator=0)
        fetched = runtime.get(handle, 2, initiator=1)
        np.testing.assert_array_equal(fetched, data)

    def test_get_returns_copy(self, runtime):
        handle = runtime.allocate((2, 2))
        fetched = runtime.get(handle, 0, initiator=1)
        fetched[0, 0] = 99.0
        assert runtime.local_view(handle, 0)[0, 0] == 0.0

    def test_get_into_out_buffer(self, runtime):
        handle = runtime.allocate((2, 2), fill=3.0)
        out = np.empty((2, 2), dtype=np.float32)
        result = runtime.get(handle, 1, initiator=0, out=out)
        assert result is out
        assert np.all(out == 3.0)

    def test_get_out_shape_mismatch(self, runtime):
        handle = runtime.allocate((2, 2))
        with pytest.raises(CommunicationError):
            runtime.get(handle, 1, initiator=0, out=np.empty((3, 3), dtype=np.float32))

    def test_rect_access(self, runtime):
        handle = runtime.allocate((4, 4))
        runtime.put(handle, 0, np.full((2, 2), 5.0, dtype=np.float32),
                    initiator=0, rect=Rect.from_bounds(1, 3, 1, 3))
        full = runtime.local_view(handle, 0)
        assert full[1, 1] == 5.0 and full[0, 0] == 0.0
        sub = runtime.get(handle, 0, initiator=1, rect=Rect.from_bounds(1, 3, 1, 3))
        assert np.all(sub == 5.0)

    def test_rect_out_of_bounds(self, runtime):
        handle = runtime.allocate((4, 4))
        with pytest.raises(CommunicationError):
            runtime.get(handle, 0, initiator=1, rect=Rect.from_bounds(0, 5, 0, 4))

    def test_accumulate_adds(self, runtime):
        handle = runtime.allocate((2, 2), fill=1.0)
        runtime.accumulate(handle, 3, np.full((2, 2), 2.0, dtype=np.float32), initiator=0)
        runtime.accumulate(handle, 3, np.full((2, 2), 0.5, dtype=np.float32), initiator=1)
        assert np.all(runtime.local_view(handle, 3) == 3.5)

    def test_accumulate_shape_mismatch(self, runtime):
        handle = runtime.allocate((2, 2))
        with pytest.raises(CommunicationError):
            runtime.accumulate(handle, 0, np.ones((3, 3)), initiator=1)

    def test_put_shape_mismatch(self, runtime):
        handle = runtime.allocate((2, 2))
        with pytest.raises(CommunicationError):
            runtime.put(handle, 0, np.ones((1, 2)), initiator=1)

    def test_invalid_target_rank(self, runtime):
        handle = runtime.allocate((2, 2))
        with pytest.raises(ValueError):
            runtime.get(handle, 99, initiator=0)

    def test_get_async_local_returns_view_with_zero_bytes(self, runtime):
        handle = runtime.allocate((2, 2), fill=4.0)
        future = runtime.get_async(handle, 1, initiator=1)
        assert future.done()
        assert future.nbytes == 0
        assert np.all(future.wait() == 4.0)

    def test_get_async_remote_counts_bytes(self, runtime):
        handle = runtime.allocate((2, 2))
        future = runtime.get_async(handle, 2, initiator=0)
        assert future.nbytes == 2 * 2 * 4


class TestTrafficAccounting:
    def test_get_recorded(self, runtime):
        handle = runtime.allocate((4, 4))
        runtime.get(handle, 1, initiator=0)
        assert runtime.traffic.total_bytes("get") == 4 * 4 * 4
        assert runtime.traffic.operation_count("get") == 1

    def test_local_get_not_remote(self, runtime):
        handle = runtime.allocate((4, 4))
        runtime.get(handle, 0, initiator=0)
        assert runtime.traffic.total_bytes("get", remote_only=True) == 0

    def test_reset_counters(self, runtime):
        handle = runtime.allocate((4, 4))
        runtime.get(handle, 1, initiator=0)
        runtime.reset_counters()
        assert runtime.traffic.total_bytes() == 0
        assert runtime.clock.makespan() == 0.0


class TestTransferTimeModel:
    def test_local_transfer_cheaper_than_remote(self):
        rt = Runtime(machine=pvc_system(12))
        local = rt.transfer_time(0, 0, 1 << 20)
        remote = rt.transfer_time(0, 5, 1 << 20)
        assert local < remote

    def test_accumulate_slower_than_get(self):
        rt = Runtime(machine=pvc_system(12))
        get = rt.transfer_time(0, 5, 1 << 20)
        acc = rt.transfer_time(0, 5, 1 << 20, accumulate=True)
        assert acc > get

    def test_intra_gpu_tile_pair_faster_than_xe_link(self):
        rt = Runtime(machine=pvc_system(12))
        # tiles 0 and 1 share a GPU; 0 and 2 do not.
        assert rt.transfer_time(0, 1, 1 << 24) < rt.transfer_time(0, 2, 1 << 24)


class TestSpmd:
    def test_run_spmd_passes_contexts(self, runtime):
        ranks = runtime.run_spmd(lambda ctx: ctx.rank)
        assert ranks == [0, 1, 2, 3]

    def test_spmd_one_sided_through_context(self, runtime):
        handle = runtime.allocate((1, 1))

        def body(ctx):
            ctx.accumulate(handle, 0, np.array([[1.0]], dtype=np.float32))
            return ctx.rank

        runtime.run_spmd(body)
        assert runtime.local_view(handle, 0)[0, 0] == pytest.approx(4.0)

    def test_threaded_backend_accumulate_is_atomic(self):
        rt = Runtime(machine=uniform_system(8), backend="threaded")
        handle = rt.allocate((64, 64))

        def body(ctx):
            for _ in range(20):
                ctx.accumulate(handle, 0, np.ones((64, 64), dtype=np.float32))

        rt.run_spmd(body)
        assert np.all(rt.local_view(handle, 0) == 8 * 20)
