"""Fault-injection tests: crashes, supervised restarts, and hand-off re-deals.

Every failure here is injected deterministically through
:mod:`repro.serve.faults` — keyed to an exact ``(worker, generation,
request ordinal)`` coordinate — so there are no sleeps-as-synchronization
and no signal races.  Where the tests must observe an *asynchronous*
recovery (the supervisor re-forking a worker), they poll a counter against
a deadline rather than assuming timing.
"""

import socket
import threading
import time

import pytest

from repro.bench.workloads import Workload
from repro.planner import PlannerService
from repro.serve import (
    FAULT_DELAY,
    FAULT_DROP,
    FAULT_EXIT,
    FAULT_TORN,
    FAULT_TORN_HANDOFF,
    Fault,
    FaultPlan,
    PlanClient,
    PlanServer,
    RestartPolicy,
    encode_frame,
    protocol,
)
from repro.serve.faults import PARENT_ACTIONS, WORKER_ACTIONS
from repro.serve.server import _RestartState
from repro.topology.machines import uniform_system

MACHINE = uniform_system(2)
SERVICE_OPTIONS = {"replication_factors": [1]}

#: Near-instant restarts so recovery polling converges fast.
FAST_RESTART = RestartPolicy(backoff_base=0.01, backoff_cap=0.05)


def make_workload(m=96, n=80, k=64):
    return Workload(f"w{m}x{n}x{k}", m, n, k)


def reference_plan(workload, top_k=None):
    """What an uninjected in-process service answers for ``workload``."""
    with PlannerService(MACHINE, **SERVICE_OPTIONS) as service:
        return service.plan(workload, top_k=top_k).recommendation


def wait_until(predicate, timeout=10.0, interval=0.02):
    """Poll ``predicate`` against a deadline; returns its final truth value."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestFaultPrimitives:
    """The pure matching seam, independent of any server."""

    def test_fault_matches_exact_coordinate_only(self):
        fault = Fault(action=FAULT_EXIT, worker=1, request=2, generation=0)
        assert fault.matches(1, 0, 2)
        assert not fault.matches(0, 0, 2)  # wrong worker
        assert not fault.matches(1, 0, 1)  # wrong ordinal
        assert not fault.matches(1, 1, 2)  # wrong incarnation

    def test_generation_none_matches_every_incarnation(self):
        fault = Fault(action=FAULT_EXIT, worker=0, request=0, generation=None)
        assert fault.matches(0, 0, 0)
        assert fault.matches(0, 7, 0)

    def test_plan_filters_by_action_family(self):
        plan = FaultPlan([Fault(action=FAULT_TORN_HANDOFF, worker=0),
                          Fault(action=FAULT_DROP, worker=0)])
        assert plan.match(0, 0, 0, actions=WORKER_ACTIONS).action == FAULT_DROP
        assert (plan.match(0, 0, 0, actions=PARENT_ACTIONS).action
                == FAULT_TORN_HANDOFF)

    def test_empty_plan_is_falsy_and_never_matches(self):
        plan = FaultPlan()
        assert not plan
        assert plan.match(0, 0, 0, actions=WORKER_ACTIONS) is None

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            Fault(action="segfault", worker=0)

    def test_negative_ordinal_rejected(self):
        with pytest.raises(ValueError):
            Fault(action=FAULT_EXIT, worker=0, request=-1)

    def test_plan_rejects_non_faults(self):
        with pytest.raises(TypeError):
            FaultPlan(["exit"])


class TestWorkerCrash:
    """A worker killed mid-request: the client retries, the parent restarts."""

    def test_crash_mid_request_retries_and_answer_matches_reference(self):
        plan = FaultPlan([Fault(action=FAULT_EXIT, worker=0, request=0)])
        workload = make_workload()
        reference = reference_plan(workload)
        with PlanServer(MACHINE, num_workers=2,
                        service_options=SERVICE_OPTIONS, fault_plan=plan,
                        restart_policy=FAST_RESTART) as srv:
            with PlanClient(srv.address, retries=2, retry_delay=0.01) as cli:
                response = cli.plan(workload)
                assert cli.transport_retries >= 1  # the crash cost a retry
            # The survivor's answer is bit-identical to the uninjected
            # in-process service: crashes may slow a request, never skew it.
            got = response.recommendation
            assert got.scheme.name == reference.scheme.name
            assert got.replication == reference.replication
            assert got.stationary == reference.stationary
            assert got.simulated_time == reference.simulated_time

            # The parent notices the corpse and re-forks it...
            assert wait_until(lambda: srv.restart_counts().get(0, 0) == 1)
            # ...and the fleet view converges back to two reporting workers,
            # now carrying the supervisor's restart accounting.
            assert wait_until(lambda: srv.aggregate_stats().num_workers == 2)
            stats = srv.aggregate_stats()
            assert stats.total_restarts == 1
            assert stats.restarts == {0: 1}
            assert "1 restarts" in stats.describe()

    def test_restarted_worker_reports_bumped_generation(self):
        plan = FaultPlan([Fault(action=FAULT_EXIT, worker=0, request=0)])
        with PlanServer(MACHINE, num_workers=2,
                        service_options=SERVICE_OPTIONS, fault_plan=plan,
                        restart_policy=FAST_RESTART) as srv:
            with PlanClient(srv.address, retries=2, retry_delay=0.01) as cli:
                cli.plan(make_workload())
            assert wait_until(lambda: srv.restart_counts().get(0, 0) == 1)

            def seen_generations():
                seen = {}
                for _ in range(8):
                    with PlanClient(srv.address, pool_size=1) as probe:
                        pong = probe.ping()
                    seen[pong["worker"]] = pong["generation"]
                return seen

            # Worker 0's replacement announces generation 1 (the fault was
            # pinned to generation 0, so the replacement serves untouched);
            # worker 1 never died and stays at generation 0.
            assert wait_until(lambda: seen_generations() == {0: 1, 1: 0})

    def test_plan_responses_carry_the_generation(self):
        with PlanServer(MACHINE, num_workers=1,
                        service_options=SERVICE_OPTIONS) as srv:
            with PlanClient(srv.address) as cli:
                assert cli.plan(make_workload()).generation == 0
                assert cli.ping()["generation"] == 0

    def test_no_restarts_without_auto_restart(self):
        plan = FaultPlan([Fault(action=FAULT_EXIT, worker=0, request=0)])
        with PlanServer(MACHINE, num_workers=2,
                        service_options=SERVICE_OPTIONS, fault_plan=plan,
                        auto_restart=False) as srv:
            with PlanClient(srv.address, retries=2, retry_delay=0.01) as cli:
                cli.plan(make_workload())  # kills worker 0, answered by 1
            assert wait_until(lambda: 0 not in srv.alive_workers())
            # Give a would-be supervisor ample time to act; nothing may.
            time.sleep(0.3)
            assert srv.restart_counts() == {}
            assert srv.alive_workers() == [1]


class TestRestartBackoff:
    """Restart storms are rate-limited and eventually abandoned."""

    def test_backoff_schedule_grows_and_caps(self):
        clock = {"now": 100.0}
        state = _RestartState(
            RestartPolicy(backoff_base=0.1, backoff_multiplier=2.0,
                          backoff_cap=0.4, window_seconds=60.0),
            clock=lambda: clock["now"])
        delays = []
        for _ in range(5):
            delays.append(state.record_death())
            clock["now"] += 1.0
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]  # doubles, then capped
        assert not state.abandoned

    def test_backoff_resets_after_a_quiet_window(self):
        clock = {"now": 0.0}
        state = _RestartState(
            RestartPolicy(backoff_base=0.1, backoff_multiplier=2.0,
                          backoff_cap=1.0, window_seconds=10.0),
            clock=lambda: clock["now"])
        assert state.record_death() == 0.1
        clock["now"] += 1.0
        assert state.record_death() == 0.2
        clock["now"] += 30.0  # well past the window: the worker was stable
        assert state.record_death() == 0.1

    def test_storm_limit_abandons_the_worker(self):
        clock = {"now": 0.0}
        state = _RestartState(
            RestartPolicy(backoff_base=0.1, window_seconds=60.0,
                          max_restarts_per_window=2),
            clock=lambda: clock["now"])
        assert state.record_death() is not None
        clock["now"] += 0.1
        assert state.record_death() is not None
        clock["now"] += 0.1
        assert state.record_death() is None  # third death in the window
        assert state.abandoned

    def test_live_restart_storm_is_capped(self):
        # generation=None re-arms the crash on every incarnation's first
        # request: each restart of worker 0 dies again as soon as it serves.
        plan = FaultPlan([Fault(action=FAULT_EXIT, worker=0, request=0,
                                generation=None)])
        policy = RestartPolicy(backoff_base=0.005, backoff_cap=0.02,
                               window_seconds=60.0, max_restarts_per_window=3)
        workload = make_workload()
        with PlanServer(MACHINE, num_workers=2,
                        service_options=SERVICE_OPTIONS, fault_plan=plan,
                        restart_policy=policy) as srv:

            def drive_traffic():
                # Keep poking the fleet so every incarnation of worker 0
                # gets a request to die on; worker 1 absorbs the rest.
                try:
                    with PlanClient(srv.address, retries=3,
                                    retry_delay=0.01) as cli:
                        cli.plan(workload)
                except ConnectionError:
                    pass

            deadline = time.monotonic() + 20.0
            while (time.monotonic() < deadline
                   and srv.abandoned_workers() != [0]):
                drive_traffic()
                time.sleep(0.02)
            assert srv.abandoned_workers() == [0]
            # The storm burned exactly the per-window budget, then stopped:
            # abandonment caps restarts instead of forking forever.
            assert srv.restart_counts()[0] == policy.max_restarts_per_window
            stable = srv.restart_counts()[0]
            time.sleep(0.2)
            assert srv.restart_counts()[0] == stable
            # The fleet still serves through the surviving worker.
            with PlanClient(srv.address, retries=2, retry_delay=0.01) as cli:
                assert cli.plan(workload).worker == 1


class TestTornHandoff:
    """A corrupted fd transfer: worker rejects it, parent re-deals the conn."""

    def test_torn_handoff_rejected_and_conn_redealt_without_client_retry(self):
        plan = FaultPlan([Fault(action=FAULT_TORN_HANDOFF, worker=0,
                                request=0)])
        workload = make_workload()
        reference = reference_plan(workload)
        with PlanServer(MACHINE, num_workers=2,
                        service_options=SERVICE_OPTIONS, fault_plan=plan,
                        restart_policy=FAST_RESTART) as srv:
            # retries=0: the client gets no second chance, so success proves
            # the *parent* moved the accepted connection to a survivor — the
            # request was never lost, only re-dealt.
            with PlanClient(srv.address, retries=0) as cli:
                response = cli.plan(workload)
                assert cli.transport_retries == 0
            assert response.worker == 1
            got = response.recommendation
            assert got.scheme.name == reference.scheme.name
            assert got.simulated_time == reference.simulated_time
            # The worker that rejected the torn hand-off exited and was
            # replaced by the supervisor.
            assert wait_until(lambda: srv.restart_counts().get(0, 0) == 1)
            assert wait_until(lambda: srv.aggregate_stats().num_workers == 2)


class TestWorkerSideFaults:
    """Drop, torn-frame, and delay faults observed from the client side."""

    def test_dropped_connection_is_retried_cleanly(self):
        plan = FaultPlan([Fault(action=FAULT_DROP, worker=0, request=0)])
        workload = make_workload()
        with PlanServer(MACHINE, num_workers=2,
                        service_options=SERVICE_OPTIONS,
                        fault_plan=plan) as srv:
            with PlanClient(srv.address, retries=2, retry_delay=0.01) as cli:
                response = cli.plan(workload)
                assert cli.transport_retries >= 1
            assert response.recommendations
            # A drop is connection-local: the worker itself lives on.
            assert srv.alive_workers() == [0, 1]
            assert srv.restart_counts() == {}

    def test_torn_frame_is_rejected_and_retried(self):
        plan = FaultPlan([Fault(action=FAULT_TORN, worker=0, request=0)])
        workload = make_workload()
        reference = reference_plan(workload)
        with PlanServer(MACHINE, num_workers=2,
                        service_options=SERVICE_OPTIONS,
                        fault_plan=plan) as srv:
            with PlanClient(srv.address, retries=2, retry_delay=0.01) as cli:
                response = cli.plan(workload)
                assert cli.transport_retries >= 1
            assert (response.recommendation.simulated_time
                    == reference.simulated_time)
            assert srv.alive_workers() == [0, 1]

    def test_torn_frame_surfaces_as_protocol_error_on_a_raw_socket(self):
        plan = FaultPlan([Fault(action=FAULT_TORN, worker=0, request=0)])
        with PlanServer(MACHINE, num_workers=1,
                        service_options=SERVICE_OPTIONS,
                        fault_plan=plan) as srv:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(10.0)
            try:
                sock.connect(srv.address)
                sock.sendall(encode_frame(protocol.ping_request()))
                with pytest.raises(protocol.ProtocolError):
                    protocol.recv_message(sock)
            finally:
                sock.close()

    def test_delay_fault_answers_late_but_correctly(self):
        plan = FaultPlan([Fault(action=FAULT_DELAY, worker=0, request=0,
                                delay_seconds=0.2)])
        with PlanServer(MACHINE, num_workers=1,
                        service_options=SERVICE_OPTIONS,
                        fault_plan=plan) as srv:
            with PlanClient(srv.address, retries=0) as cli:
                started = time.monotonic()
                pong = cli.ping()
                elapsed = time.monotonic() - started
                assert cli.transport_retries == 0
            assert pong["worker"] == 0
            assert elapsed >= 0.2


class _OneAnswerServer:
    """Loopback server answering exactly one ping per connection, then
    closing it — every pooled client connection is stale by construction."""

    def __init__(self):
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.address = self.listener.getsockname()[:2]
        self.served = 0
        self.thread = threading.Thread(target=self._loop, daemon=True)
        self.thread.start()

    def _loop(self):
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            try:
                message = protocol.recv_message(conn)
                if message and message.get("op") == "ping":
                    conn.sendall(encode_frame(protocol.ok_response(
                        {"worker": 0, "pid": 0})))
                    self.served += 1
            except (OSError, protocol.ProtocolError):
                pass
            finally:
                conn.close()

    def close(self):
        try:
            self.listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.listener.close()
        self.thread.join(timeout=2.0)


class TestStalePoolRegression:
    """The pooled-connection staleness fix in PlanClient._request."""

    def test_stale_pooled_connection_gets_one_free_fresh_retry(self):
        # The server closes every connection after one answer, so the pooled
        # connection from the first ping is dead when the second ping draws
        # it.  With retries=0 the old client raised ConnectionError here;
        # the fix drains the pool and retries fresh without spending the
        # (zero-sized) retry budget.
        server = _OneAnswerServer()
        try:
            with PlanClient(server.address, pool_size=1, retries=0) as cli:
                assert cli.ping() == {"worker": 0, "pid": 0}
                assert cli.ping() == {"worker": 0, "pid": 0}  # via freebie
                assert cli.transport_retries == 0
        finally:
            server.close()

    def test_pool_freebie_is_bounded_to_one_per_request(self):
        # Prime the pool, then kill the server entirely: the freebie buys
        # exactly one extra connection attempt, after which the configured
        # retry budget governs — a dead server still fails promptly.
        server = _OneAnswerServer()
        with PlanClient(server.address, pool_size=1, retries=0,
                        retry_delay=0.01) as cli:
            assert cli.ping() == {"worker": 0, "pid": 0}
            server.close()
            with pytest.raises(ConnectionError):
                cli.ping()
            assert cli.transport_retries == 0  # freebie never counts

    def test_restarted_worker_invalidates_the_pool_transparently(self):
        # End-to-end: a request is answered, the owning worker crashes on
        # its next request and is restarted; the client's pooled connection
        # is stale, yet the next request succeeds.  The freebie covers the
        # pooled-connection failure; one configured retry covers the narrow
        # window where the freebie's fresh connection is dealt to the worker
        # in the instant before its exit lands (the worker already owns that
        # fd, so no parent-side re-deal can save it).
        plan = FaultPlan([Fault(action=FAULT_EXIT, worker=0, request=1)])
        workload = make_workload()
        with PlanServer(MACHINE, num_workers=1,
                        service_options=SERVICE_OPTIONS, fault_plan=plan,
                        restart_policy=FAST_RESTART) as srv:
            with PlanClient(srv.address, pool_size=1, retries=1,
                            retry_delay=0.01) as cli:
                first = cli.plan(workload)
                assert first.generation == 0
                # Ordinal 1 on generation 0 kills the worker mid-request;
                # the pooled connection fails, a fresh one is opened, and
                # the parent holds it until the restarted worker (the fault
                # is generation-pinned, so generation 1 is clean) takes the
                # hand-off.
                second = cli.plan(workload)
                assert second.generation == 1
                assert second.recommendation.simulated_time \
                    == first.recommendation.simulated_time
            assert srv.restart_counts() == {0: 1}
