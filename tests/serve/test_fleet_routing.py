"""Fleet routing tests: consistent hashing and warm-cache affinity.

Two layers:

* **Ring properties** (hypothesis) — routing is stable under membership
  churn: a join moves keys only *onto* the new node, a leave moves only the
  removed node's keys, and the moved fraction stays near ``1/N``.
* **End-to-end affinity** — a :class:`~repro.serve.fleet.FleetClient` over
  real single-worker :class:`~repro.serve.server.PlanServer` processes
  produces exactly the warm-hit profile of one server replaying the same
  trace: same signature → same endpoint → same warm cache, every time.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.workloads import Workload
from repro.core.graph import mlp_chain
from repro.planner import PlannerService
from repro.serve import FleetClient, FleetRouter, PlanServer
from repro.topology.machines import uniform_system

MACHINE = uniform_system(2)
SERVICE_OPTIONS = {"replication_factors": [1]}

#: Node-name alphabet for property tests (hash inputs, so content is free).
_names = st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=12)
_node_sets = st.sets(_names, min_size=2, max_size=8)
_keys = st.lists(st.text(min_size=1, max_size=24), min_size=1, max_size=50,
                 unique=True)


def make_workload(m=96, n=80, k=64):
    return Workload(f"w{m}x{n}x{k}", m, n, k)


class TestRingProperties:
    @given(nodes=_node_sets, keys=_keys)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_routing_is_stable_and_membership_order_free(self, nodes, keys):
        ring_a = FleetRouter(sorted(nodes))
        ring_b = FleetRouter(sorted(nodes, reverse=True))
        for key in keys:
            owner = ring_a.route(key)
            assert owner in nodes
            assert ring_a.route(key) == owner  # stable
            assert ring_b.route(key) == owner  # insertion-order free

    @given(nodes=_node_sets, keys=_keys, newcomer=_names)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_join_moves_keys_only_onto_the_new_node(self, nodes, keys,
                                                    newcomer):
        if newcomer in nodes:
            return
        ring = FleetRouter(sorted(nodes))
        before = {key: ring.route(key) for key in keys}
        ring.add_node(newcomer)
        for key in keys:
            after = ring.route(key)
            if after != before[key]:
                # Every remapped key lands on the newcomer's arc — no
                # innocent-bystander shuffling between incumbents.
                assert after == newcomer

    @given(nodes=_node_sets, keys=_keys)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_leave_remaps_only_the_removed_nodes_keys(self, nodes, keys):
        ordered = sorted(nodes)
        ring = FleetRouter(ordered)
        victim = ordered[0]
        before = {key: ring.route(key) for key in keys}
        ring.remove_node(victim)
        for key in keys:
            after = ring.route(key)
            if before[key] == victim:
                assert after != victim
            else:
                # Keys the victim never owned keep their owner exactly.
                assert after == before[key]

    @given(nodes=_node_sets, keys=_keys)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_join_then_leave_restores_the_original_map(self, nodes, keys):
        ring = FleetRouter(sorted(nodes))
        before = {key: ring.route(key) for key in keys}
        ring.add_node("zz-transient")
        ring.remove_node("zz-transient")
        assert {key: ring.route(key) for key in keys} == before

    def test_moved_fraction_on_join_is_near_one_over_n(self):
        nodes = [f"server-{i}" for i in range(5)]
        keys = [f"signature-{i}" for i in range(4000)]
        ring = FleetRouter(nodes)
        before = {key: ring.route(key) for key in keys}
        ring.add_node("server-5")
        moved = sum(1 for key in keys if ring.route(key) != before[key])
        # Expected moved fraction is 1/6 (the newcomer's fair share); allow
        # generous virtual-node variance but reject anything near a rehash.
        assert moved / len(keys) < 2 / 6
        assert moved > 0  # the newcomer did claim an arc

    def test_route_chain_lists_distinct_nodes_starting_at_home(self):
        ring = FleetRouter(["a", "b", "c"])
        chain = ring.route_chain("some-key")
        assert chain[0] == ring.route("some-key")
        assert sorted(chain) == ["a", "b", "c"]  # all members, no repeats
        assert ring.route_chain("some-key", count=2) == chain[:2]

    def test_membership_bookkeeping(self):
        ring = FleetRouter(["a", "b"])
        assert len(ring) == 2 and "a" in ring and "c" not in ring
        assert ring.nodes == ("a", "b")
        with pytest.raises(ValueError):
            ring.add_node("a")
        with pytest.raises(KeyError):
            ring.remove_node("c")
        with pytest.raises(ValueError):
            FleetRouter(replicas=0)

    def test_empty_ring_refuses_to_route(self):
        ring = FleetRouter()
        with pytest.raises(RuntimeError):
            ring.route("key")
        with pytest.raises(RuntimeError):
            ring.route_chain("key")


@pytest.fixture(scope="module")
def fleet_servers():
    """Three single-worker servers — per-endpoint hit counts are exact."""
    servers = {}
    try:
        for name in ("alpha", "beta", "gamma"):
            server = PlanServer(MACHINE, num_workers=1,
                                service_options=SERVICE_OPTIONS)
            server.start()
            servers[name] = server
        yield servers
    finally:
        for server in servers.values():
            server.stop()


def fleet_trace():
    """A replayable request trace with repeats (6 unique, 12 requests)."""
    unique = [make_workload(96 + 16 * i, 80, 64) for i in range(6)]
    return unique + list(reversed(unique))


def total_cache_hits(servers):
    return sum(server.aggregate_stats().totals.cache_hits
               for server in servers.values())


class TestFleetClientAffinity:
    def test_same_signature_always_routes_to_the_same_endpoint(self,
                                                               fleet_servers):
        endpoints = {name: srv.address for name, srv in fleet_servers.items()}
        with FleetClient(endpoints, MACHINE,
                         service_options=SERVICE_OPTIONS) as fleet:
            workload = make_workload()
            home = fleet.route(workload)
            assert home in endpoints
            # Equal-shape workloads share a signature regardless of name.
            twin = Workload("differently-named", workload.m, workload.n,
                            workload.k)
            assert fleet.route(twin) == home
            assert all(fleet.route(workload) == home for _ in range(5))

    def test_routed_warm_hits_match_a_single_server_replay(self,
                                                           fleet_servers):
        trace = fleet_trace()
        # Reference: one fresh server replays the whole trace alone.
        with PlanServer(MACHINE, num_workers=1,
                        service_options=SERVICE_OPTIONS) as solo:
            from repro.serve import PlanClient
            with PlanClient(solo.address) as cli:
                for workload in trace:
                    cli.plan(workload)
            solo_hits = solo.aggregate_stats().totals.cache_hits

        endpoints = {name: srv.address for name, srv in fleet_servers.items()}
        before = total_cache_hits(fleet_servers)
        with FleetClient(endpoints, MACHINE,
                         service_options=SERVICE_OPTIONS) as fleet:
            for workload in trace:
                fleet.plan(workload)
            fleet_hits = total_cache_hits(fleet_servers) - before
            # Consistent hashing pins every signature to one endpoint, so
            # spreading the trace across three servers loses not a single
            # warm hit versus one server holding everything.  (The absolute
            # count exceeds the repeat count when signature bucketing merges
            # neighboring shapes — identically on both sides.)
            assert fleet_hits == solo_hits
            assert fleet_hits >= len(trace) - 6  # at least every repeat hit
            assert fleet.failovers == 0
            spread = fleet.requests_by_endpoint
            assert sum(spread.values()) == len(trace)
            # Repeats ride to the same endpoint as their first occurrence:
            # every endpoint saw an even request count (each unique workload
            # appears exactly twice in the trace).
            assert all(count % 2 == 0 for count in spread.values())

    def test_remote_answers_match_in_process_reference(self, fleet_servers):
        endpoints = {name: srv.address for name, srv in fleet_servers.items()}
        workload = make_workload(112, 96, 48)
        with PlannerService(MACHINE, **SERVICE_OPTIONS) as service:
            reference = service.plan(workload).recommendation
        with FleetClient(endpoints, MACHINE,
                         service_options=SERVICE_OPTIONS) as fleet:
            got = fleet.plan(workload).recommendation
        assert got.scheme.name == reference.scheme.name
        assert got.replication == reference.replication
        assert got.simulated_time == reference.simulated_time

    def test_graph_requests_route_and_warm_hit(self, fleet_servers):
        endpoints = {name: srv.address for name, srv in fleet_servers.items()}
        graph = mlp_chain(96, 64)
        with FleetClient(endpoints, MACHINE,
                         service_options=SERVICE_OPTIONS) as fleet:
            home = fleet.route_graph(graph)
            assert fleet.route_graph(graph) == home
            cold = fleet.plan_graph(graph)
            warm = fleet.plan_graph(graph)
            assert warm.cache_hit  # same endpoint, same worker, warm cache
            assert tuple(warm.assignment) == tuple(cold.assignment)
            assert warm.makespan == cold.makespan

    def test_ping_all_and_worker_stats_sweep(self, fleet_servers):
        endpoints = {name: srv.address for name, srv in fleet_servers.items()}
        with FleetClient(endpoints, MACHINE,
                         service_options=SERVICE_OPTIONS) as fleet:
            pongs = fleet.ping_all()
            assert set(pongs) == set(endpoints)
            assert all(p["worker"] == 0 for p in pongs.values())
            stats = fleet.worker_stats()
            assert set(stats) == set(endpoints)


class TestFleetMembershipChurn:
    def test_join_moves_only_the_new_arc_end_to_end(self, fleet_servers):
        endpoints = {name: srv.address for name, srv in fleet_servers.items()}
        workloads = [make_workload(64 + 8 * i, 72, 56) for i in range(24)]
        with PlanServer(MACHINE, num_workers=1,
                        service_options=SERVICE_OPTIONS) as extra:
            with FleetClient(endpoints, MACHINE,
                             service_options=SERVICE_OPTIONS) as fleet:
                before = {w.name: fleet.route(w) for w in workloads}
                fleet.add_endpoint("delta", extra.address)
                moved = {w.name: fleet.route(w) for w in workloads
                         if fleet.route(w) != before[w.name]}
                assert all(home == "delta" for home in moved.values())
                fleet.remove_endpoint("delta")
                assert {w.name: fleet.route(w) for w in workloads} == before

    def test_failover_reaches_the_next_ring_node(self):
        servers = {}
        try:
            for name in ("one", "two"):
                server = PlanServer(MACHINE, num_workers=1,
                                    service_options=SERVICE_OPTIONS)
                server.start()
                servers[name] = server
            endpoints = {name: srv.address
                         for name, srv in servers.items()}
            client_options = {"retries": 0, "retry_delay": 0.01,
                              "timeout": 10.0}
            with FleetClient(endpoints, MACHINE,
                             service_options=SERVICE_OPTIONS,
                             client_options=client_options) as fleet:
                workload = make_workload()
                home = fleet.route(workload)
                survivor = next(n for n in endpoints if n != home)
                servers[home].stop()  # the home endpoint goes dark
                response = fleet.plan(workload)
                assert response.recommendations
                assert fleet.failovers == 1
                assert fleet.requests_by_endpoint == {survivor: 1}
        finally:
            for server in servers.values():
                server.stop()

    def test_failover_disabled_surfaces_the_home_failure(self):
        server = PlanServer(MACHINE, num_workers=1,
                            service_options=SERVICE_OPTIONS)
        address = server.start()
        other = PlanServer(MACHINE, num_workers=1,
                           service_options=SERVICE_OPTIONS)
        other_address = other.start()
        try:
            endpoints = {"one": address, "two": other_address}
            client_options = {"retries": 0, "retry_delay": 0.01}
            with FleetClient(endpoints, MACHINE, failover=False,
                             service_options=SERVICE_OPTIONS,
                             client_options=client_options) as fleet:
                workload = make_workload()
                home = fleet.route(workload)
                (server if home == "one" else other).stop()
                with pytest.raises(ConnectionError):
                    fleet.plan(workload)
                assert fleet.failovers == 0
        finally:
            server.stop()
            other.stop()

    def test_endpoint_validation(self, fleet_servers):
        endpoints = {name: srv.address for name, srv in fleet_servers.items()}
        with pytest.raises(ValueError):
            FleetClient({}, MACHINE)
        with FleetClient(endpoints, MACHINE,
                         service_options=SERVICE_OPTIONS) as fleet:
            with pytest.raises(ValueError):
                fleet.add_endpoint("alpha", endpoints["alpha"])
            with pytest.raises(KeyError):
                fleet.remove_endpoint("nope")
            assert fleet.endpoints == ("alpha", "beta", "gamma")
