"""Unit tests for the length-prefixed JSON wire protocol."""

import socket

import pytest

from repro.bench.workloads import Workload, block_sparse_workload
from repro.serve import protocol
from repro.serve.protocol import (
    HEADER,
    MAX_MESSAGE_BYTES,
    FrameDecoder,
    ProtocolError,
    RemotePlanResponse,
    encode_frame,
    error_response,
    ok_response,
    plan_request,
    recv_message,
    send_message,
)


class TestFraming:
    def test_encode_frame_layout(self):
        frame = encode_frame({"op": "ping"})
        (length,) = HEADER.unpack(frame[:HEADER.size])
        assert length == len(frame) - HEADER.size

    def test_socketpair_roundtrip(self):
        left, right = socket.socketpair()
        try:
            send_message(left, {"op": "ping", "n": 42})
            assert recv_message(right) == {"op": "ping", "n": 42}
        finally:
            left.close()
            right.close()

    def test_recv_returns_none_on_clean_eof(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_message(right) is None
        finally:
            right.close()

    def test_recv_raises_on_mid_frame_disconnect(self):
        left, right = socket.socketpair()
        try:
            frame = encode_frame({"op": "ping"})
            left.sendall(frame[:-2])  # truncate the body
            left.close()
            with pytest.raises(ProtocolError):
                recv_message(right)
        finally:
            right.close()

    def test_recv_rejects_oversized_length(self):
        left, right = socket.socketpair()
        try:
            left.sendall(HEADER.pack(MAX_MESSAGE_BYTES + 1))
            with pytest.raises(ProtocolError):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_recv_rejects_non_object_body(self):
        left, right = socket.socketpair()
        try:
            body = b"[1,2,3]"
            left.sendall(HEADER.pack(len(body)) + body)
            with pytest.raises(ProtocolError):
                recv_message(right)
        finally:
            left.close()
            right.close()


class TestFrameDecoder:
    def test_byte_at_a_time_reassembly(self):
        frames = encode_frame({"a": 1}) + encode_frame({"b": [2, 3]})
        decoder = FrameDecoder()
        seen = []
        for i in range(len(frames)):
            seen.extend(decoder.feed(frames[i:i + 1]))
        assert seen == [{"a": 1}, {"b": [2, 3]}]
        assert decoder.pending_bytes == 0

    def test_multiple_messages_in_one_feed(self):
        frames = encode_frame({"a": 1}) + encode_frame({"b": 2})
        assert FrameDecoder().feed(frames) == [{"a": 1}, {"b": 2}]

    def test_partial_frame_stays_buffered(self):
        frame = encode_frame({"op": "stats"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:3]) == []
        assert decoder.pending_bytes == 3
        assert decoder.feed(frame[3:]) == [{"op": "stats"}]

    def test_oversized_header_raises(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(HEADER.pack(MAX_MESSAGE_BYTES + 1))

    def test_bad_json_raises(self):
        body = b"{nope"
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(HEADER.pack(len(body)) + body)


class TestRequests:
    def test_plan_request_roundtrips_dense_workload(self):
        workload = Workload("w", 96, 80, 64)
        request = plan_request(workload, top_k=3)
        assert request["op"] == "plan" and request["top_k"] == 3
        assert Workload.from_dict(request["workload"]) == workload

    def test_plan_request_carries_structure(self):
        workload = block_sparse_workload(256, 256, 256, density=0.25, seed=7)
        request = plan_request(workload)
        restored = Workload.from_dict(request["workload"])
        assert restored.structure == workload.structure

    def test_ok_and_error_responses(self):
        assert ok_response({"x": 1}) == {"ok": True, "result": {"x": 1}}
        wrapped = error_response(ValueError("bad shape"))
        assert wrapped["ok"] is False
        assert wrapped["error"] == {"type": "ValueError", "message": "bad shape"}


class TestPlanResponsePayload:
    def _served_response(self):
        from repro.planner import PlannerService
        from repro.topology.machines import uniform_system

        with PlannerService(uniform_system(2), replication_factors=[1]) as service:
            return service.plan(Workload("w", 96, 80, 64))

    def test_roundtrip_preserves_recommendations_and_flags(self):
        response = self._served_response()
        payload = protocol.plan_response_payload(response, worker=3, pid=1234)
        remote = RemotePlanResponse.from_dict(payload)
        assert remote.worker == 3 and remote.pid == 1234
        assert remote.cache_hit == response.cache_hit
        assert remote.signature_key == response.signature.key()
        assert remote.num_simulated == response.search_stats.num_simulated
        best, reference = remote.recommendation, response.recommendation
        assert best.scheme.name == reference.scheme.name
        assert best.replication == reference.replication
        assert best.stationary == reference.stationary
        assert best.simulated_time == reference.simulated_time

    def test_wire_payload_is_json_safe(self):
        import json

        response = self._served_response()
        payload = protocol.plan_response_payload(response, worker=0, pid=1)
        assert RemotePlanResponse.from_dict(json.loads(json.dumps(payload)))


class TestProtocolVersion11:
    """Additive 1.1 fields: trace context, metrics op, plan_age/trace_id/spans."""

    def test_version_is_at_least_1_1(self):
        assert protocol.PROTOCOL_VERSION >= (1, 1)

    def test_untraced_plan_request_is_wire_identical_to_1_0(self):
        workload = Workload("w", 96, 80, 64)
        request = plan_request(workload)
        assert "trace" not in request  # old servers never see the new key

    def test_trace_context_travels_when_given(self):
        workload = Workload("w", 96, 80, 64)
        trace = {"trace_id": "t" * 16, "parent_span_id": "p" * 16}
        request = plan_request(workload, trace=trace)
        assert request["trace"] == trace

    def test_metrics_request_shape(self):
        assert protocol.metrics_request() == {"op": "metrics"}

    def test_response_telemetry_fields_roundtrip(self):
        from repro.planner import PlannerService
        from repro.topology.machines import uniform_system

        with PlannerService(uniform_system(2), replication_factors=[1]) as service:
            response = service.plan(Workload("w", 96, 80, 64))
        spans = [{"name": "worker.plan", "trace_id": "abc", "span_id": "s",
                  "parent_id": None, "start": 1.0, "duration": 0.1,
                  "attributes": {}, "pid": 7, "role": "worker-0"}]
        payload = protocol.plan_response_payload(response, worker=0, pid=7,
                                                 trace_id="abc", spans=spans)
        remote = RemotePlanResponse.from_dict(payload)
        assert remote.trace_id == "abc"
        assert remote.spans == spans
        assert remote.plan_age == response.plan_age

    def test_1_0_response_without_telemetry_fields_still_parses(self):
        from repro.planner import PlannerService
        from repro.topology.machines import uniform_system

        with PlannerService(uniform_system(2), replication_factors=[1]) as service:
            response = service.plan(Workload("w", 96, 80, 64))
        payload = protocol.plan_response_payload(response, worker=0, pid=7)
        for key in ("plan_age", "trace_id", "spans"):
            payload.pop(key, None)
        remote = RemotePlanResponse.from_dict(payload)
        assert remote.plan_age == 0.0
        assert remote.trace_id is None
        assert remote.spans == []


class TestProtocolVersion13:
    """Additive 1.3 op: joint graph planning over the same wire."""

    def _served_graph_response(self):
        from repro.core.graph import mlp_chain
        from repro.planner import PlannerService
        from repro.topology.machines import uniform_system

        graph = mlp_chain(96, 64)
        with PlannerService(uniform_system(2), replication_factors=[1]) as service:
            return graph, service.plan_graph(graph)

    def test_version_is_at_least_1_3(self):
        assert protocol.PROTOCOL_VERSION >= (1, 3)

    def test_plan_graph_request_shape(self):
        from repro.core.graph import OpGraph, mlp_chain

        graph = mlp_chain(96, 64)
        request = protocol.plan_graph_request(graph, lattice_size=6)
        assert request["op"] == "plan_graph" and request["lattice_size"] == 6
        assert OpGraph.from_dict(request["graph"]) == graph
        assert "trace" not in request  # untraced requests stay 1.3-minimal
        traced = protocol.plan_graph_request(graph, trace={"trace_id": "t"})
        assert traced["trace"] == {"trace_id": "t"}

    def test_graph_response_payload_roundtrip(self):
        import json

        from repro.serve.protocol import RemoteGraphPlanResponse

        graph, response = self._served_graph_response()
        payload = protocol.graph_plan_response_payload(response, worker=2,
                                                       pid=77)
        remote = RemoteGraphPlanResponse.from_dict(json.loads(json.dumps(payload)))
        assert remote.worker == 2 and remote.pid == 77
        assert remote.signature_key == response.signature.key()
        assert tuple(remote.assignment) == response.assignment
        assert remote.makespan == response.makespan
        assert remote.greedy_makespan == response.greedy_makespan
        assert remote.method == response.method
        assert remote.cache_hit == response.cache_hit
        assert len(remote.recommendations) == len(graph.ops)
        for wire, local in zip(remote.recommendations, response.recommendations):
            assert wire.scheme.name == local.scheme.name
            assert wire.simulated_time == local.simulated_time

    def test_graph_response_tolerates_missing_optional_fields(self):
        from repro.serve.protocol import RemoteGraphPlanResponse

        _, response = self._served_graph_response()
        payload = protocol.graph_plan_response_payload(response, worker=0, pid=1)
        for key in ("plan_age", "stale", "trace_id", "spans"):
            payload.pop(key, None)
        remote = RemoteGraphPlanResponse.from_dict(payload)
        assert remote.plan_age == 0.0 and remote.stale is False
        assert remote.trace_id is None and remote.spans == []
