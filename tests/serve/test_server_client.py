"""End-to-end tests: forked PlanServer fleet + pooled PlanClient.

A module-scoped two-worker server (tiny machine, tiny search space) backs
most tests; scenarios needing special server configuration start their own.
"""

import socket
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bench.workloads import Workload, attention_workload, block_sparse_workload
from repro.planner import PlannerService
from repro.serve import (
    PlanClient,
    PlanServer,
    RemotePlanError,
    encode_frame,
    protocol,
)
from repro.topology.machines import uniform_system

MACHINE = uniform_system(2)
SERVICE_OPTIONS = {"replication_factors": [1]}


def make_workload(m=96, n=80, k=64):
    return Workload(f"w{m}x{n}x{k}", m, n, k)


@pytest.fixture(scope="module")
def server():
    with PlanServer(MACHINE, num_workers=2,
                    service_options=SERVICE_OPTIONS) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with PlanClient(server.address, pool_size=4) as cli:
        yield cli


class TestServing:
    def test_remote_plan_matches_in_process_service(self, client):
        workload = attention_workload(128)
        with PlannerService(MACHINE, **SERVICE_OPTIONS) as service:
            reference = service.plan(workload).recommendation
        remote = client.plan(workload).recommendation
        assert remote.scheme.name == reference.scheme.name
        assert remote.replication == reference.replication
        assert remote.stationary == reference.stationary
        assert remote.simulated_time == reference.simulated_time
        assert remote.percent_of_peak == reference.percent_of_peak

    def test_repeat_requests_hit_the_worker_cache(self, client):
        workload = make_workload(100, 90, 70)
        cold = client.plan(workload)
        # Pin the warm request to the same worker: a pooled client reuses the
        # released connection for the immediate next request.
        warm = client.plan(workload)
        if warm.worker == cold.worker:
            assert warm.cache_hit
            assert warm.planning_time < cold.planning_time
        assert warm.recommendation.simulated_time == cold.recommendation.simulated_time

    def test_top_k_override_travels(self, client):
        response = client.plan(make_workload(), top_k=3)
        assert len(response.recommendations) == 3
        times = [r.simulated_time for r in response.recommendations]
        assert times == sorted(times)

    def test_structured_workload_over_the_wire(self, client):
        workload = block_sparse_workload(256, 256, 256, density=0.25, seed=3)
        with PlannerService(MACHINE, **SERVICE_OPTIONS) as service:
            reference = service.plan(workload).recommendation
        remote = client.plan(workload).recommendation
        assert remote.scheme.name == reference.scheme.name
        assert remote.simulated_time == reference.simulated_time

    def test_server_side_failure_raises_remote_error_without_retry(self, client):
        before = client.transport_retries
        with pytest.raises(RemotePlanError) as excinfo:
            client._request({"op": "no-such-op"})
        assert excinfo.value.error_type == "ValueError"
        assert client.transport_retries == before

    def test_malformed_plan_payload_is_a_server_error(self, client):
        with pytest.raises(RemotePlanError):
            client._request({"op": "plan", "workload": {"not": "a workload"}})


class TestFleet:
    def test_consecutive_connections_round_robin_across_workers(self, server):
        with PlanClient(server.address) as first, PlanClient(server.address) as second:
            workers = {first.ping()["worker"], second.ping()["worker"]}
        assert workers == {0, 1}

    def test_concurrent_clients_spread_and_aggregate(self, server):
        workload = make_workload(120, 110, 60)
        with PlanClient(server.address, pool_size=8) as cli:
            with ThreadPoolExecutor(max_workers=8) as pool:
                responses = list(pool.map(lambda _: cli.plan(workload), range(32)))
        assert {r.worker for r in responses} == {0, 1}
        times = {r.recommendation.simulated_time for r in responses}
        assert len(times) == 1  # both shared-nothing caches agree exactly
        stats = server.aggregate_stats()
        assert stats.num_workers == 2
        assert stats.workers_with_hits == 2  # warm traffic reached both
        assert stats.totals.requests >= 32
        assert stats.totals.cache_hits >= 30  # each worker computed at most once

    def test_worker_stats_identify_the_owning_worker(self, server):
        with PlanClient(server.address) as cli:
            owner = cli.ping()
            snap = cli.worker_stats()
        assert snap.worker == owner["worker"]
        assert snap.pid == owner["pid"]
        assert snap.cache.capacity == 256

    def test_alive_workers(self, server):
        assert server.alive_workers() == [0, 1]


class TestPipelining:
    def test_pipelined_requests_answered_in_order(self, server):
        """Many frames written before any read exercise the write buffering."""
        if isinstance(server.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:  # pragma: no cover - fixture uses a unix socket
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(10.0)
        try:
            sock.connect(server.address)
            blob = b"".join(encode_frame(protocol.ping_request()) for _ in range(64))
            sock.sendall(blob)
            answers = [protocol.recv_message(sock) for _ in range(64)]
        finally:
            sock.close()
        assert all(a is not None and a["ok"] for a in answers)
        workers = {a["result"]["worker"] for a in answers}
        assert len(workers) == 1  # one connection stays pinned to one worker

    def test_unread_responses_do_not_block_other_connections(self, server):
        """A client that never reads must not stall its worker's siblings."""
        lazy = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        lazy.settimeout(10.0)
        try:
            lazy.connect(server.address)
            lazy.sendall(b"".join(encode_frame(protocol.ping_request())
                                  for _ in range(256)))
            # Both workers keep answering other clients while `lazy` hoards
            # its responses unread.
            for _ in range(2):
                with PlanClient(server.address) as cli:
                    assert "worker" in cli.ping()
        finally:
            lazy.close()

    def test_hoarding_connection_is_closed_at_the_backlog_cap(self, monkeypatch):
        """Unread responses may not grow worker memory without bound."""
        from repro.serve import server as server_module

        # Forked workers inherit the patched cap, so a tiny backlog triggers.
        monkeypatch.setattr(server_module, "MAX_CONNECTION_BACKLOG_BYTES", 256)
        with PlanServer(MACHINE, num_workers=1,
                        service_options=SERVICE_OPTIONS) as srv:
            hoarder = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            hoarder.settimeout(10.0)
            try:
                hoarder.connect(srv.address)
                # Enough pings that the replies overflow the worker's kernel
                # send buffer (~a few hundred KB) and pile into outbuf past
                # the 256-byte cap; the worker then drops the connection,
                # which surfaces either as EPIPE/ECONNRESET while we are
                # still sending or as EOF/reset when we finally read.
                dropped = False
                try:
                    hoarder.sendall(b"".join(
                        encode_frame(protocol.ping_request())
                        for _ in range(20000)))
                    for _ in range(20000):
                        if protocol.recv_message(hoarder) is None:
                            dropped = True
                            break
                except (protocol.ProtocolError, OSError):
                    dropped = True
                assert dropped
            finally:
                hoarder.close()
            # The worker itself lives on and serves fresh connections.
            with PlanClient(srv.address) as cli:
                assert cli.ping()["worker"] == 0


class TestLifecycle:
    def test_tcp_address_mode(self):
        with PlanServer(MACHINE, num_workers=1, address=("127.0.0.1", 0),
                        service_options=SERVICE_OPTIONS) as srv:
            host, port = srv.address
            assert host == "127.0.0.1" and port > 0
            with PlanClient((host, port)) as cli:
                assert cli.ping()["worker"] == 0
                assert cli.plan(make_workload()).recommendations

    def test_restart_after_crash_replaces_stale_socket_file(self, tmp_path):
        """A SIGKILLed server's leftover socket file must not block restarts."""
        import os

        path = str(tmp_path / "plans.sock")
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(path)
        stale.close()  # file remains, nothing listens: a crashed server
        assert os.path.exists(path)
        with PlanServer(MACHINE, num_workers=1, address=path,
                        service_options=SERVICE_OPTIONS) as srv:
            with PlanClient(srv.address) as cli:
                assert cli.ping()["worker"] == 0
        assert not os.path.exists(path)

    def test_bind_still_conflicts_with_a_live_server(self, tmp_path):
        """The stale-socket probe must not steal a living server's address."""
        path = str(tmp_path / "plans.sock")
        with PlanServer(MACHINE, num_workers=1, address=path,
                        service_options=SERVICE_OPTIONS):
            second = PlanServer(MACHINE, num_workers=1, address=path,
                                service_options=SERVICE_OPTIONS)
            with pytest.raises(OSError):
                second.start()
            second.stop()

    def test_stop_is_idempotent_and_cleans_the_socket(self):
        import os

        srv = PlanServer(MACHINE, num_workers=1, service_options=SERVICE_OPTIONS)
        address = srv.start()
        assert os.path.exists(address)
        srv.stop()
        srv.stop()
        assert not os.path.exists(address)

    def test_workers_exit_after_stop(self):
        srv = PlanServer(MACHINE, num_workers=2, service_options=SERVICE_OPTIONS)
        srv.start()
        procs = [handle.process for handle in srv._workers]
        srv.stop()
        assert all(not proc.is_alive() for proc in procs)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            PlanServer(MACHINE, num_workers=0)

    def test_bounded_store_options_reach_the_workers(self):
        options = dict(SERVICE_OPTIONS, cache_capacity=5,
                       cache_max_bytes=1 << 16, cache_ttl_seconds=3600.0)
        with PlanServer(MACHINE, num_workers=1, service_options=options) as srv:
            with PlanClient(srv.address) as cli:
                snap = cli.worker_stats()
        assert snap.cache.capacity == 5
        assert snap.cache.max_bytes == 1 << 16
        assert snap.cache.ttl_seconds == 3600.0

    def test_warm_start_store_round_trip(self, tmp_path):
        store = str(tmp_path / "plans.json")
        workload = make_workload(128, 96, 64)
        options = dict(SERVICE_OPTIONS, store_path=store, autosave=True)
        with PlanServer(MACHINE, num_workers=1, service_options=options) as srv:
            with PlanClient(srv.address) as cli:
                assert not cli.plan(workload).cache_hit
        with PlanServer(MACHINE, num_workers=1, service_options=options) as srv:
            with PlanClient(srv.address) as cli:
                warm = cli.plan(workload)
                assert warm.cache_hit  # loaded from the shared store at boot
                snap = cli.worker_stats()
        assert snap.service.warm_start_entries == 1


class _FlakyServer:
    """Accepts on loopback; drops the first N connections before answering."""

    def __init__(self, failures: int):
        self.failures = failures
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.address = self.listener.getsockname()[:2]
        self.accepted = 0
        self.thread = threading.Thread(target=self._loop, daemon=True)
        self.thread.start()

    def _loop(self):
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            self.accepted += 1
            if self.accepted <= self.failures:
                conn.close()  # simulate a worker dying mid-conversation
                continue
            try:
                message = protocol.recv_message(conn)
                if message and message.get("op") == "ping":
                    conn.sendall(encode_frame(protocol.ok_response(
                        {"worker": 0, "pid": 0})))
            except (OSError, protocol.ProtocolError):
                pass
            finally:
                conn.close()

    def close(self):
        try:
            self.listener.shutdown(socket.SHUT_RDWR)  # wake the blocked accept
        except OSError:
            pass
        self.listener.close()
        self.thread.join(timeout=2.0)


class TestRetries:
    def test_client_retries_transport_failures(self):
        flaky = _FlakyServer(failures=2)
        try:
            with PlanClient(flaky.address, retries=3, retry_delay=0.01) as cli:
                assert cli.ping() == {"worker": 0, "pid": 0}
                assert cli.transport_retries >= 1
        finally:
            flaky.close()

    def test_client_gives_up_after_exhausting_retries(self):
        flaky = _FlakyServer(failures=100)
        try:
            with PlanClient(flaky.address, retries=1, retry_delay=0.01) as cli:
                with pytest.raises(ConnectionError):
                    cli.ping()
        finally:
            flaky.close()

    def test_connection_refused_surfaces_as_connection_error(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead_address = probe.getsockname()[:2]
        probe.close()  # nothing listens here anymore
        with PlanClient(dead_address, retries=1, retry_delay=0.01) as cli:
            with pytest.raises(ConnectionError):
                cli.ping()


class TestBackgroundRefreshFleet:
    """Per-worker background refreshers: stale flag on the wire, warm serving."""

    def test_stale_rides_the_wire_and_refresh_runs_in_worker(self):
        options = dict(SERVICE_OPTIONS, cache_ttl_seconds=0.2,
                       cache_grace_seconds=30.0)
        with PlanServer(MACHINE, num_workers=1, service_options=options,
                        refresh_options={"interval_seconds": 10.0}) as srv:
            with PlanClient(srv.address) as cli:
                workload = make_workload()
                first = cli.plan(workload)
                assert not first.cache_hit and not first.stale
                import time
                time.sleep(0.3)  # past TTL, well inside grace
                stale = cli.plan(workload)
                assert stale.cache_hit and stale.stale
                assert stale.plan_age >= 0.2
                assert (stale.recommendation.describe()
                        == first.recommendation.describe())
                # The stale serve woke the worker's refresher; the next
                # request lands on a fresh recomputed entry.
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    totals = srv.aggregate_stats().totals
                    if totals.background_refreshes >= 1:
                        break
                    time.sleep(0.02)
                assert totals.background_refreshes >= 1
                assert totals.stale_hits >= 1
                fresh = cli.plan(workload)
                assert fresh.cache_hit and not fresh.stale

    def test_pre_ttl_refresh_keeps_steady_traffic_fresh(self):
        options = dict(SERVICE_OPTIONS, cache_ttl_seconds=0.4)
        with PlanServer(MACHINE, num_workers=1, service_options=options,
                        refresh_options={"interval_seconds": 0.05,
                                         "refresh_margin": 0.5}) as srv:
            with PlanClient(srv.address) as cli:
                import time
                workload = make_workload()
                cli.plan(workload)
                # Steady traffic slower than the TTL but faster than
                # TTL + grace: with pre-TTL refresh nothing ever goes stale.
                for _ in range(3):
                    time.sleep(0.3)
                    response = cli.plan(workload)
                    assert response.cache_hit and not response.stale

    def test_fleet_without_refresh_options_reports_zero_refreshes(self, server):
        totals = server.aggregate_stats().totals
        assert totals.background_refreshes == 0


class TestGraphServing:
    """Protocol 1.3: joint graph planning over the fleet socket."""

    def test_ping_advertises_protocol_1_3(self, client):
        assert tuple(client.ping()["protocol"]) >= (1, 3)

    def test_remote_plan_graph_matches_in_process_service(self, client):
        from repro.core.graph import mlp_chain

        graph = mlp_chain(96, 64)
        with PlannerService(MACHINE, **SERVICE_OPTIONS) as service:
            reference = service.plan_graph(graph)
        remote = client.plan_graph(graph)
        assert tuple(remote.assignment) == reference.assignment
        assert remote.makespan == reference.makespan
        assert remote.greedy_makespan == reference.greedy_makespan
        assert remote.method == reference.method
        assert remote.signature_key == reference.signature.key()
        for wire, local in zip(remote.recommendations,
                               reference.recommendations):
            assert wire.scheme.name == local.scheme.name
            assert wire.simulated_time == local.simulated_time

    def test_repeat_graph_requests_hit_the_worker_cache(self, client):
        from repro.core.graph import mlp_chain

        graph = mlp_chain(112, 48)
        cold = client.plan_graph(graph)
        warm = client.plan_graph(graph)
        if warm.worker == cold.worker:
            assert warm.cache_hit
        assert tuple(warm.assignment) == tuple(cold.assignment)
        assert warm.makespan == cold.makespan

    def test_lattice_size_override_travels(self, client):
        from repro.core.graph import mlp_chain

        graph = mlp_chain(96, 64)
        narrow = client.plan_graph(graph, lattice_size=1)
        # A width-1 lattice has no joint freedom: joint == greedy.
        assert tuple(narrow.assignment) == (0, 0)
        assert narrow.makespan == narrow.greedy_makespan
