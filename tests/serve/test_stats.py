"""Unit tests for cross-worker stats aggregation."""

from repro.planner.cache import CacheStats
from repro.planner.service import ServiceStats
from repro.serve.stats import ServerStats, WorkerStats, aggregate_service_stats


def snap(worker, requests=0, hits=0, planned=0, simulated=0, pruned=0):
    return WorkerStats(
        worker=worker,
        pid=1000 + worker,
        service=ServiceStats(requests=requests, cache_hits=hits,
                             plans_computed=planned,
                             candidates_simulated=simulated,
                             candidates_pruned=pruned),
        cache=CacheStats(size=planned, capacity=256),
    )


class TestAggregation:
    def test_totals_sum_every_counter(self):
        total = aggregate_service_stats([
            ServiceStats(requests=10, cache_hits=7, plans_computed=3,
                         coalesced_requests=1, candidates_simulated=20,
                         candidates_pruned=40, total_planning_time=1.5,
                         warm_start_entries=2),
            ServiceStats(requests=5, cache_hits=4, plans_computed=1,
                         candidates_simulated=6, candidates_pruned=12,
                         total_planning_time=0.5),
        ])
        assert total.requests == 15
        assert total.cache_hits == 11
        assert total.plans_computed == 4
        assert total.coalesced_requests == 1
        assert total.candidates_simulated == 26
        assert total.candidates_pruned == 52
        assert total.total_planning_time == 2.0
        assert total.warm_start_entries == 2
        assert total.hit_rate == 11 / 15

    def test_server_stats_orders_and_counts_workers(self):
        stats = ServerStats.from_workers([snap(1, requests=4, hits=4),
                                          snap(0, requests=6, hits=2, planned=1)])
        assert [w.worker for w in stats.workers] == [0, 1]
        assert stats.num_workers == 2
        assert stats.workers_with_requests == 2
        assert stats.workers_with_hits == 2
        assert stats.totals.requests == 10

    def test_idle_workers_do_not_count_as_serving(self):
        stats = ServerStats.from_workers([snap(0, requests=3, hits=0, planned=3),
                                          snap(1)])
        assert stats.workers_with_requests == 1
        assert stats.workers_with_hits == 0

    def test_describe_mentions_every_worker_and_the_fleet(self):
        text = ServerStats.from_workers([snap(0, requests=2, hits=1),
                                         snap(1, requests=2, hits=2)]).describe()
        assert "worker 0" in text and "worker 1" in text
        assert "fleet (2 workers): 4 requests" in text


class TestSerialization:
    def test_worker_stats_roundtrip(self):
        original = snap(2, requests=9, hits=5, planned=2, simulated=11, pruned=13)
        restored = WorkerStats.from_dict(original.to_dict())
        assert restored == original

    def test_unknown_counter_fields_are_dropped(self):
        payload = snap(0, requests=1).to_dict()
        payload["service"]["counter_from_the_future"] = 99
        payload["cache"]["other_new_thing"] = 1
        restored = WorkerStats.from_dict(payload)
        assert restored.service.requests == 1
        assert not hasattr(restored.service, "counter_from_the_future")
