"""Fleet telemetry end-to-end: metrics op, cross-process traces, request logs.

One module-scoped telemetry-enabled server backs every test; counters are
cumulative across tests, so assertions are delta-based or monotone.
"""

import json

import pytest

from repro.bench.workloads import Workload
from repro.obs.rollup import rollup_requests
from repro.obs.tracing import Tracer
from repro.serve import PlanClient, PlanServer
from repro.topology.machines import uniform_system

MACHINE = uniform_system(2)
SERVICE_OPTIONS = {"replication_factors": [1]}


def make_workload(m=96, n=80, k=64):
    return Workload(f"w{m}x{n}x{k}", m, n, k)


@pytest.fixture(scope="module")
def reqlog_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("reqlogs"))


@pytest.fixture(scope="module")
def server(reqlog_dir):
    with PlanServer(MACHINE, num_workers=2, service_options=SERVICE_OPTIONS,
                    enable_metrics=True, enable_tracing=True,
                    reqlog_dir=reqlog_dir) as srv:
        yield srv


def outcome_total(snapshot):
    return sum(value for name, value in snapshot["counters"].items()
               if name.startswith("repro_planner_requests_total"))


class TestMetricsOp:
    def test_worker_scrape_matches_fleet_aggregate(self, server):
        """client.metrics() (one worker) sums across connections to the
        server-side merged view — the parity check for the wire op."""
        with PlanClient(server.address) as cli:
            cli.plan(make_workload())
        merged = server.aggregate_metrics()
        with PlanClient(server.address) as first, \
                PlanClient(server.address) as second:
            # Consecutive connects round-robin: one scrape per worker.
            assert {first.ping()["worker"], second.ping()["worker"]} == {0, 1}
            per_worker = [first.metrics(), second.metrics()]
        total = sum(outcome_total(snap) for snap in per_worker)
        assert total == outcome_total(merged)
        assert total >= 1.0

    def test_aggregate_metrics_counts_every_request(self, server):
        before = outcome_total(server.aggregate_metrics())
        workload = make_workload(120, 88, 72)
        with PlanClient(server.address) as cli:
            for _ in range(3):
                cli.plan(workload)
        after = outcome_total(server.aggregate_metrics())
        assert after - before == 3.0

    def test_merged_snapshot_renders_as_prometheus(self, server):
        from repro.obs.metrics import render_prometheus

        with PlanClient(server.address) as cli:
            cli.plan(make_workload())
        text = render_prometheus(server.aggregate_metrics())
        assert "# TYPE repro_planner_requests_total counter" in text
        assert "# TYPE repro_planner_latency_seconds histogram" in text
        assert 'le="+Inf"' in text

    def test_untelemetered_server_answers_empty_snapshots(self):
        with PlanServer(MACHINE, num_workers=1,
                        service_options=SERVICE_OPTIONS) as plain:
            with PlanClient(plain.address) as cli:
                cli.plan(make_workload())
                assert cli.metrics()["counters"] == {}
            assert plain.aggregate_metrics()["counters"] == {}


class TestCrossProcessTracing:
    def test_one_request_renders_as_one_timeline(self, server):
        """The acceptance path: client -> worker -> planner -> search under
        a single trace id, Chrome-exportable."""
        tracer = Tracer(role="client")
        with PlanClient(server.address, tracer=tracer) as cli:
            response = cli.plan(make_workload(132, 96, 60))
        assert response.trace_id
        spans = tracer.spans(response.trace_id)
        names = {s.name for s in spans}
        assert {"client.plan", "worker.plan", "planner.plan",
                "search.bound", "search.simulate"} <= names
        assert {s.trace_id for s in spans} == {response.trace_id}
        assert {s.role for s in spans} == {"client", f"worker-{response.worker}"}
        by_name = {s.name: s for s in spans}
        assert by_name["worker.plan"].parent_id == by_name["client.plan"].span_id
        assert by_name["planner.plan"].parent_id == by_name["worker.plan"].span_id

        trace = tracer.chrome_trace(response.trace_id)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert all(e["args"]["trace_id"] == response.trace_id for e in slices)
        assert len({e["pid"] for e in slices}) == 2  # client + worker processes
        json.dumps(trace)  # Perfetto-loadable JSON

    def test_warm_hit_traces_without_search_spans(self, server):
        tracer = Tracer(role="client")
        workload = make_workload(144, 104, 52)
        with PlanClient(server.address, tracer=tracer) as cli:
            cli.plan(workload)
            warm = cli.plan(workload)
        if warm.cache_hit:  # same pooled connection -> same worker
            names = {s.name for s in tracer.spans(warm.trace_id)}
            assert "search.bound" not in names
            assert {"client.plan", "worker.plan", "planner.plan"} <= names
        assert warm.plan_age >= 0.0

    def test_untraced_client_against_traced_server_stays_plain(self, server):
        with PlanClient(server.address) as cli:
            response = cli.plan(make_workload())
        assert response.trace_id is None
        assert response.spans == []


class TestFleetRequestLog:
    def test_workers_log_to_private_files_and_rollup_reads_the_dir(
            self, server, reqlog_dir):
        workload = make_workload(156, 112, 44)
        with PlanClient(server.address, pool_size=4) as cli:
            for _ in range(4):
                cli.plan(workload)
        rollup = rollup_requests(reqlog_dir)
        assert rollup.records >= 4
        served = [agg for agg in rollup.signatures.values()
                  if agg.workload == workload.name]
        assert len(served) == 1
        assert served[0].requests >= 4
        assert served[0].hits >= 1  # repeats on a pinned connection hit


class TestFleetStatsExtremes:
    def test_fleet_preserves_per_worker_extremes(self, server):
        with PlanClient(server.address) as cli:
            cli.plan(make_workload(168, 120, 36))
        stats = server.aggregate_stats()
        assert stats.max_planning_time > 0.0
        assert stats.max_planning_time == max(
            w.service.max_planning_time for w in stats.workers)
        # Sums would fabricate a latency no worker saw; max must not.
        assert stats.max_planning_time < sum(
            w.service.max_planning_time for w in stats.workers) + 1e-12
        assert stats.oldest_plan_age is not None
        assert stats.oldest_plan_age >= 0.0
