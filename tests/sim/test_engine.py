"""Unit tests for the unified discrete-event engine."""

import pytest

from repro.runtime.clock import ACCUMULATE, COMPUTE, COPY, EGRESS, INGRESS
from repro.sim import EventEngine, EventKind, InMemoryTraceRecorder


class TestBasicScheduling:
    def test_gemm_serialises_on_compute(self):
        engine = EventEngine(2)
        first = engine.gemm(0, 1.0)
        second = engine.gemm(0, 2.0)
        assert (first.start, first.end) == (0.0, 1.0)
        assert (second.start, second.end) == (1.0, 3.0)
        assert second.engine_dep == first.uid

    def test_dependencies_gate_start(self):
        engine = EventEngine(2)
        fetch = engine.fetch(0, 2.0, src=1, occupancy=2.0)
        gemm = engine.gemm(0, 1.0, deps=(fetch,))
        assert gemm.start == fetch.end
        assert gemm.binding == fetch.uid
        assert fetch.uid in gemm.deps

    def test_engines_overlap(self):
        engine = EventEngine(2)
        fetch = engine.fetch(0, 5.0, src=1, occupancy=5.0)
        gemm = engine.gemm(0, 1.0)
        assert gemm.start == 0.0  # different engine, no dependency
        assert engine.makespan() == fetch.end

    def test_sync_joins_without_reserving(self):
        engine = EventEngine(1)
        a = engine.gemm(0, 1.0)
        b = engine.local_accumulate(0, 3.0)
        join = engine.sync(0, deps=(a, b))
        assert join.start == join.end == b.end
        assert join.duration == 0.0
        assert engine.busy_time(0, COMPUTE) == 4.0

    def test_none_deps_are_ignored(self):
        engine = EventEngine(1)
        event = engine.gemm(0, 1.0, deps=(None, None))
        assert event.start == 0.0


class TestContention:
    def test_egress_fan_out_serialises(self):
        # Two readers fetch from the same owner: the owner's shared egress
        # capacity admits one transfer at a time.
        engine = EventEngine(3)
        first = engine.fetch(1, 1.0, src=0, occupancy=1.0)
        second = engine.fetch(2, 1.0, src=0, occupancy=1.0)
        assert first.start == 0.0
        assert second.start == first.start + 1.0

    def test_ingress_fan_in_serialises(self):
        engine = EventEngine(3)
        first = engine.accumulate(1, 1.0, dst=0, occupancy=1.0)
        second = engine.accumulate(2, 1.0, dst=0, occupancy=1.0)
        assert second.start == first.start + 1.0

    def test_relaxed_engine_drops_cross_device_floors(self):
        relaxed = EventEngine(3, contention=False)
        first = relaxed.fetch(1, 1.0, src=0, occupancy=1.0)
        second = relaxed.fetch(2, 1.0, src=0, occupancy=1.0)
        assert first.start == 0.0 and second.start == 0.0
        assert relaxed.busy_time(0, EGRESS) == 0.0

    def test_relaxed_never_later_than_contended(self):
        def emit(engine):
            events = []
            for reader in (1, 2):
                fetch = engine.fetch(reader, 1.0, src=0, occupancy=1.0)
                gemm = engine.gemm(reader, 0.5, deps=(fetch,))
                events.append(engine.accumulate(reader, 0.25, dst=0,
                                                occupancy=0.25, deps=(gemm,)))
            return events

        full = EventEngine(3)
        relaxed = EventEngine(3, contention=False)
        contended_events = emit(full)
        relaxed_events = emit(relaxed)
        for contended, free in zip(contended_events, relaxed_events):
            assert free.start <= contended.start
            assert free.end <= contended.end
        assert relaxed.makespan() <= full.makespan()

    def test_accumulate_interference_steals_compute(self):
        engine = EventEngine(2)
        engine.accumulate(0, 1.0, dst=1, occupancy=1.0, interference=0.25)
        assert engine.busy_time(0, ACCUMULATE) == 1.0
        assert engine.busy_time(0, COMPUTE) == 0.25
        assert engine.busy_time(1, INGRESS) == 1.0


class TestCriticalPath:
    def test_cross_engine_chain_is_recovered(self):
        engine = EventEngine(2)
        fetch = engine.fetch(0, 2.0, src=1, occupancy=2.0)
        gemm = engine.gemm(0, 1.0, deps=(fetch,))
        acc = engine.accumulate(0, 0.5, dst=1, occupancy=0.5, deps=(gemm,))
        chain = engine.critical_path()
        assert [event.uid for event in chain] == [fetch.uid, gemm.uid, acc.uid]
        assert [event.kind for event in chain] == [
            EventKind.FETCH, EventKind.GEMM, EventKind.ACCUMULATE
        ]

    def test_critical_path_length_bounds_makespan(self):
        engine = EventEngine(2)
        fetch = engine.fetch(0, 2.0, src=1, occupancy=2.0)
        engine.gemm(0, 1.0, deps=(fetch,))
        engine.gemm(1, 0.5)
        assert engine.critical_path_length() == pytest.approx(3.0)
        assert engine.critical_path_length() <= engine.makespan()

    def test_empty_engine(self):
        engine = EventEngine(1)
        assert engine.critical_path() == []
        assert engine.critical_path_length() == 0.0
        assert engine.makespan() == 0.0


class TestRecorderAndReset:
    def test_recorder_sees_every_event(self):
        recorder = InMemoryTraceRecorder()
        engine = EventEngine(2, recorder=recorder)
        fetch = engine.fetch(0, 1.0, src=1, occupancy=1.0)
        engine.gemm(0, 1.0, deps=(fetch,))
        engine.sync(0)
        assert len(recorder) == 3
        assert len(recorder.by_kind(EventKind.GEMM)) == 1
        assert len(recorder.by_device(0)) == 3

    def test_reset_clears_everything(self):
        engine = EventEngine(2)
        engine.gemm(0, 1.0)
        engine.reset()
        assert engine.makespan() == 0.0
        assert engine.events == []
        follow_up = engine.gemm(0, 1.0)
        assert follow_up.start == 0.0 and follow_up.engine_dep is None
