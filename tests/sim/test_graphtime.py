"""Unit tests for the shared DAG schedule model (repro.sim.graphtime)."""

import pytest

from repro.sim.graphtime import GraphTiming, dag_makespan


class TestDagMakespan:
    def test_chain_reduces_to_sum(self):
        timing = dag_makespan(
            num_ops=3,
            edges=[(0, 1), (1, 2)],
            op_times=[1.0, 2.0, 3.0],
            edge_times=[0.5, 0.25],
        )
        assert isinstance(timing, GraphTiming)
        assert timing.makespan == pytest.approx(1.0 + 0.5 + 2.0 + 0.25 + 3.0)
        assert timing.finish == (pytest.approx(1.0),
                                 pytest.approx(3.5),
                                 pytest.approx(6.75))

    def test_diamond_takes_critical_path(self):
        # 0 fans out to 1 (slow) and 2 (fast); 3 joins both.
        timing = dag_makespan(
            num_ops=4,
            edges=[(0, 1), (0, 2), (1, 3), (2, 3)],
            op_times=[1.0, 5.0, 1.0, 1.0],
            edge_times=[0.0, 0.0, 0.5, 0.5],
        )
        # Critical path goes through op 1: 1 + 5 + 0.5 + 1.
        assert timing.makespan == pytest.approx(7.5)
        assert timing.finish[3] == timing.makespan

    def test_independent_ops_overlap(self):
        timing = dag_makespan(num_ops=2, edges=[],
                              op_times=[4.0, 1.0], edge_times=[])
        assert timing.makespan == pytest.approx(4.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            dag_makespan(num_ops=2, edges=[(0, 1)],
                         op_times=[1.0], edge_times=[0.0])
        with pytest.raises(ValueError):
            dag_makespan(num_ops=2, edges=[(0, 1)],
                         op_times=[1.0, 1.0], edge_times=[])

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            dag_makespan(num_ops=1, edges=[], op_times=[-1.0], edge_times=[])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError):
            dag_makespan(num_ops=2, edges=[(0, 5)],
                         op_times=[1.0, 1.0], edge_times=[0.0])

    def test_rejects_cycle(self):
        with pytest.raises(ValueError, match="cycle"):
            dag_makespan(num_ops=2, edges=[(0, 1), (1, 0)],
                         op_times=[1.0, 1.0], edge_times=[0.0, 0.0])
