"""Simulated-time parity against the committed benchmark snapshot.

The snapshot in ``benchmarks/results/event_engine_smoke.json`` was written by
the pre-refactor executors (inline clock charging).  The event-engine
front-ends must reproduce every simulated time to 1e-9 relative — this is the
guard against accidental cost-model drift while refactoring the plumbing.
"""

import json
import os
import sys

import pytest

_BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
)
SNAPSHOT = os.path.join(_BENCH_DIR, "results", "event_engine_smoke.json")


@pytest.fixture(scope="module")
def smoke():
    if _BENCH_DIR not in sys.path:
        sys.path.insert(0, _BENCH_DIR)
    import bench_event_engine_smoke

    return bench_event_engine_smoke


class TestSnapshotParity:
    def test_snapshot_is_committed(self):
        assert os.path.exists(SNAPSHOT), "event-engine smoke snapshot missing"

    def test_all_points_match_within_tolerance(self, smoke):
        assert smoke.check_snapshot(SNAPSHOT) == 0

    def test_snapshot_covers_both_execution_modes(self):
        with open(SNAPSHOT, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        modes = {point["mode"] for point in payload["points"]}
        assert modes == {"direct", "ir"}
        assert len(payload["points"]) >= 48
