"""Structured workloads through the event engine: parity and scaling.

The cardinal regression risk of the sparse frontier is drift on *dense*
workloads: every Workload now carries a structure, so the dense default must
reproduce the committed pre-change snapshot with **0.0 relative drift** (not
just within tolerance), and an all-live structured workload — which exercises
the structured pricing path end to end — must be bit-identical to dense too.
"""

import json
import os
import sys

import pytest

from repro.bench.schemes import scheme_by_name
from repro.bench.sweep import run_ua_point
from repro.bench.workloads import (
    Workload,
    block_sparse_workload,
    moe_workload,
)
from repro.core.config import ExecutionConfig, ExecutionMode
from repro.core.structure import DENSE, BlockSparse, MoERagged
from repro.topology.machines import uniform_system

_BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
)
SNAPSHOT = os.path.join(_BENCH_DIR, "results", "event_engine_smoke.json")


@pytest.fixture(scope="module")
def smoke():
    if _BENCH_DIR not in sys.path:
        sys.path.insert(0, _BENCH_DIR)
    import bench_event_engine_smoke

    return bench_event_engine_smoke


class TestDenseStructureParity:
    def test_dense_structure_reproduces_snapshot_with_zero_drift(self, smoke):
        """Every committed point, re-simulated with an explicit dense structure."""
        with open(SNAPSHOT, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        expected = {smoke._key(record): record for record in payload["points"]}
        assert len(expected) >= 144

        for record in smoke.compute_points():
            # compute_points builds workloads whose structure defaults to
            # DENSE — the post-change code path every dense caller takes.
            reference = expected[smoke._key(record)]
            assert record["simulated_time"] == reference["simulated_time"], (
                smoke._key(record)
            )

    @pytest.mark.parametrize("mode", ["direct", "ir"])
    def test_explicit_dense_structure_identical(self, mode):
        machine = uniform_system(4)
        config = ExecutionConfig(mode=ExecutionMode(mode), simulate_only=True)
        defaulted = Workload("w", 96, 160, 224)
        explicit = Workload("w", 96, 160, 224, structure=DENSE)
        scheme = scheme_by_name("outer")
        time_default = run_ua_point(machine, defaulted, scheme, (2, 2, 2), "C",
                                    config).simulated_time
        time_explicit = run_ua_point(machine, explicit, scheme, (2, 2, 2), "C",
                                     config).simulated_time
        assert time_default == time_explicit


class TestAllLiveStructureParity:
    """An all-live mask / full-capacity batch runs the structured path with
    every live fraction exactly 1.0 — times must be bit-identical to dense."""

    MACHINE = uniform_system(4)
    CONFIG = ExecutionConfig(simulate_only=True)

    @pytest.mark.parametrize("scheme", ["column", "row", "outer"])
    @pytest.mark.parametrize("stationary", ["A", "B", "C"])
    def test_all_live_block_mask_is_bit_exact(self, scheme, stationary):
        dense = Workload("env", 128, 192, 256)
        full = block_sparse_workload(128, 192, 256, density=1.0,
                                     block_k=64, block_n=64)
        assert isinstance(full.structure, BlockSparse)
        assert full.structure.density == 1.0
        t_dense = run_ua_point(self.MACHINE, dense, scheme_by_name(scheme),
                               (2, 2, 2), stationary, self.CONFIG).simulated_time
        t_full = run_ua_point(self.MACHINE, full, scheme_by_name(scheme),
                              (2, 2, 2), stationary, self.CONFIG).simulated_time
        assert t_full == t_dense

    @pytest.mark.parametrize("scheme", ["column", "row", "outer"])
    def test_full_capacity_moe_is_bit_exact(self, scheme):
        dense = Workload("env", 128, 192, 256)
        full = moe_workload(4, 32, 192, 256, expert_tokens=[32, 32, 32, 32])
        assert isinstance(full.structure, MoERagged)
        assert full.structure.utilization == 1.0
        t_dense = run_ua_point(self.MACHINE, dense, scheme_by_name(scheme),
                               (2, 2, 2), "C", self.CONFIG).simulated_time
        t_full = run_ua_point(self.MACHINE, full, scheme_by_name(scheme),
                              (2, 2, 2), "C", self.CONFIG).simulated_time
        assert t_full == t_dense


class TestStructuredExecutionGuards:
    def test_structured_requires_simulate_only(self):
        machine = uniform_system(2)
        workload = block_sparse_workload(64, 64, 64, density=0.5, block_k=32,
                                         block_n=32)
        with pytest.raises(ValueError, match="simulate_only"):
            run_ua_point(machine, workload, scheme_by_name("column"), (1, 1, 1),
                         "C", ExecutionConfig())

    def test_structured_rejects_ir_mode(self):
        machine = uniform_system(2)
        workload = moe_workload(2, 32, 64, 64, expert_tokens=[32, 5])
        config = ExecutionConfig(mode=ExecutionMode.IR, simulate_only=True)
        with pytest.raises(ValueError, match="direct"):
            run_ua_point(machine, workload, scheme_by_name("column"), (1, 1, 1),
                         "C", config)

    def test_fully_masked_tiles_cost_nothing_extra(self):
        """Sparser masks shed both simulated time and modelled traffic."""
        machine = uniform_system(4)
        config = ExecutionConfig(simulate_only=True)
        lean = block_sparse_workload(128, 256, 256, density=0.1, block_k=64,
                                     block_n=64, seed=3)
        rich = block_sparse_workload(128, 256, 256, density=0.8, block_k=64,
                                     block_n=64, seed=3)
        p_lean = run_ua_point(machine, lean, scheme_by_name("row"), (1, 1, 1),
                              "B", config)
        p_rich = run_ua_point(machine, rich, scheme_by_name("row"), (1, 1, 1),
                              "B", config)
        assert p_lean.simulated_time < p_rich.simulated_time
        assert p_lean.extra["remote_get_bytes"] < p_rich.extra["remote_get_bytes"]
