"""Trace recording: executor integration and Chrome export."""

import json

import numpy as np

from repro.core.config import ExecutionConfig
from repro.core.matmul import plan_ops, universal_matmul
from repro.core.direct import DirectExecutor
from repro.core.cost_model import CostModel
from repro.dist.matrix import DistributedMatrix
from repro.dist.partition import ColumnBlock, RowBlock
from repro.runtime.runtime import Runtime
from repro.sim import EventEngine, EventKind, InMemoryTraceRecorder
from repro.topology.machines import uniform_system


def _operands(runtime, m=24, n=20, k=16):
    rng = np.random.default_rng(7)
    a = DistributedMatrix.from_dense(runtime, rng.random((m, k), dtype=np.float32),
                                     RowBlock(), name="A")
    b = DistributedMatrix.from_dense(runtime, rng.random((k, n), dtype=np.float32),
                                     ColumnBlock(), name="B")
    c = DistributedMatrix.create(runtime, (m, n), ColumnBlock(), name="C")
    return a, b, c


class TestExecutorTracing:
    def test_direct_executor_records_typed_events(self):
        runtime = Runtime(machine=uniform_system(4))
        a, b, c = _operands(runtime)
        recorder = InMemoryTraceRecorder()
        engine = EventEngine(runtime.num_ranks, recorder=recorder)
        cost_model = CostModel(runtime.machine)
        executor = DirectExecutor(a, b, c, cost_model, ExecutionConfig(),
                                  engine=engine)
        per_rank_ops = plan_ops(a, b, c, stationary="C")
        makespan, _ = executor.execute(per_rank_ops)

        np.testing.assert_allclose(c.to_dense(), a.to_dense() @ b.to_dense(),
                                   rtol=1e-5)
        assert recorder.by_kind(EventKind.GEMM)
        assert recorder.by_kind(EventKind.FETCH)
        assert recorder.by_kind(EventKind.ACCUMULATE)
        assert max(event.end for event in recorder.events) == makespan

    def test_events_cover_every_rank(self):
        runtime = Runtime(machine=uniform_system(4))
        a, b, c = _operands(runtime)
        recorder = InMemoryTraceRecorder()
        engine = EventEngine(runtime.num_ranks, recorder=recorder)
        executor = DirectExecutor(a, b, c, CostModel(runtime.machine),
                                  ExecutionConfig(), engine=engine)
        executor.execute(plan_ops(a, b, c, stationary="B"))
        assert {event.device for event in recorder.events} == set(range(4))


class TestChromeExport:
    def test_chrome_trace_roundtrips_as_json(self, tmp_path):
        recorder = InMemoryTraceRecorder()
        engine = EventEngine(2, recorder=recorder)
        fetch = engine.fetch(0, 1.0, src=1, occupancy=1.0, label="get:A(0, 0)")
        engine.gemm(0, 2.0, deps=(fetch,), label="gemm")
        engine.sync(0, deps=(fetch,))

        path = recorder.dump_chrome_trace(str(tmp_path / "trace.json"))
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        events = payload["traceEvents"]
        # Zero-duration syncs are dropped from the visual trace.
        assert len(events) == 2
        by_name = {event["name"]: event for event in events}
        assert by_name["gemm"]["ts"] == 1.0e6  # modelled seconds -> microseconds
        assert by_name["gemm"]["dur"] == 2.0e6
        assert by_name["get:A(0, 0)"]["args"]["peer"] == 1
