"""Unit tests for the machine presets (paper Table 2)."""

import pytest

from repro.topology.machines import (
    GB,
    TFLOP,
    get_system,
    h100_system,
    hierarchical_system,
    pvc_system,
    uniform_system,
)


class TestTable2Values:
    """The presets must match the constants the paper reports in Table 2."""

    def test_pvc_device_count(self):
        assert pvc_system().num_devices == 12

    def test_pvc_link_bandwidth(self):
        machine = pvc_system()
        # Tiles on different GPUs talk over Xe Link at 26.5 GB/s.
        assert machine.topology.bandwidth(0, 2) == pytest.approx(26.5 * GB)

    def test_pvc_fp32_peak(self):
        assert pvc_system().flops_peak == pytest.approx(22.7 * TFLOP)

    def test_h100_device_count(self):
        assert h100_system().num_devices == 8

    def test_h100_link_bandwidth(self):
        assert h100_system().topology.bandwidth(0, 1) == pytest.approx(450.0 * GB)

    def test_h100_fp32_peak(self):
        assert h100_system().flops_peak == pytest.approx(67.0 * TFLOP)

    def test_pvc_memory_capacity(self):
        assert pvc_system().memory_capacity == pytest.approx(64 * GB)

    def test_h100_memory_capacity(self):
        assert h100_system().memory_capacity == pytest.approx(80 * GB)


class TestPvcTopologyTiers:
    def test_same_gpu_tiles_use_fast_fabric(self):
        machine = pvc_system()
        assert machine.topology.bandwidth(0, 1) == pytest.approx(230.0 * GB)
        assert machine.topology.bandwidth(4, 5) == pytest.approx(230.0 * GB)

    def test_cross_gpu_tiles_use_xe_link(self):
        machine = pvc_system()
        assert machine.topology.bandwidth(1, 2) == pytest.approx(26.5 * GB)

    def test_h100_single_tier(self):
        machine = h100_system()
        assert machine.topology.bandwidth(0, 1) == machine.topology.bandwidth(3, 7)


class TestAccumulateAndEfficiency:
    def test_pvc_accumulate_efficiency_is_80_percent(self):
        assert pvc_system().accumulate_efficiency == pytest.approx(0.8)

    def test_h100_has_accumulate_compute_interference(self):
        assert h100_system().accumulate_compute_interference > 0.0
        assert pvc_system().accumulate_compute_interference == 0.0

    def test_total_peak(self):
        machine = pvc_system()
        assert machine.total_peak() == pytest.approx(12 * 22.7 * TFLOP)


class TestFactories:
    def test_get_system_by_name(self):
        assert get_system("pvc").name == "pvc"
        assert get_system("H100").name == "h100"

    def test_get_system_unknown(self):
        with pytest.raises(KeyError):
            get_system("tpu")

    def test_get_system_with_device_override(self):
        assert get_system("pvc", num_devices=6).num_devices == 6

    def test_with_devices_rescales(self):
        machine = h100_system().with_devices(4)
        assert machine.num_devices == 4
        assert machine.topology.num_devices == 4

    def test_uniform_system(self):
        machine = uniform_system(5, flops_peak=10 * TFLOP)
        assert machine.num_devices == 5
        assert machine.flops_peak == 10 * TFLOP

    def test_hierarchical_system_tiers(self):
        machine = hierarchical_system(2, 4, intra_node_bandwidth=200 * GB,
                                      inter_node_bandwidth=25 * GB)
        assert machine.num_devices == 8
        assert machine.topology.bandwidth(0, 3) == pytest.approx(200 * GB)
        assert machine.topology.bandwidth(0, 4) == pytest.approx(25 * GB)
