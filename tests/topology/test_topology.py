"""Unit tests for links and topologies."""

import pytest

from repro.topology.links import Link, LinkKind
from repro.topology.topology import Topology


class TestLink:
    def test_transfer_time_includes_latency(self):
        link = Link(bandwidth=1.0e9, latency=1.0e-6, kind=LinkKind.INTRA_NODE)
        assert link.transfer_time(1.0e9) == pytest.approx(1.0 + 1.0e-6)

    def test_zero_bytes_is_free(self):
        link = Link(bandwidth=1.0e9, latency=1.0e-6, kind=LinkKind.INTRA_NODE)
        assert link.transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        link = Link(bandwidth=1.0e9, latency=0.0, kind=LinkKind.SELF)
        with pytest.raises(ValueError):
            link.transfer_time(-1)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            Link(bandwidth=0.0, latency=0.0, kind=LinkKind.SELF)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            Link(bandwidth=1.0, latency=-1.0, kind=LinkKind.SELF)


class TestTopology:
    def test_uniform_all_pairs_equal(self):
        topo = Topology.uniform(4, link_bandwidth=10.0e9)
        assert topo.bandwidth(0, 1) == topo.bandwidth(2, 3) == 10.0e9

    def test_self_link_differs(self):
        topo = Topology.uniform(4, link_bandwidth=10.0e9, self_bandwidth=1.0e12)
        assert topo.bandwidth(1, 1) == 1.0e12
        assert topo.is_local(1, 1)

    def test_overrides(self):
        fast = Link(100.0e9, 1.0e-6, LinkKind.INTRA_DEVICE)
        slow = Link(10.0e9, 1.0e-6, LinkKind.INTRA_NODE)
        topo = Topology(4, slow, Link(1e12, 0.0, LinkKind.SELF), {(0, 1): fast})
        assert topo.bandwidth(0, 1) == 100.0e9
        assert topo.bandwidth(1, 0) == 10.0e9  # directed override only

    def test_transfer_time_scales_with_bytes(self):
        topo = Topology.uniform(2, link_bandwidth=1.0e9, link_latency=0.0)
        assert topo.transfer_time(0, 1, 2_000_000_000) == pytest.approx(2.0)

    def test_device_range_check(self):
        topo = Topology.uniform(2, link_bandwidth=1.0e9)
        with pytest.raises(ValueError):
            topo.link(0, 5)

    def test_min_max_remote_bandwidth(self):
        fast = Link(100.0e9, 1.0e-6, LinkKind.INTRA_DEVICE)
        slow = Link(10.0e9, 1.0e-6, LinkKind.INTRA_NODE)
        topo = Topology(4, slow, Link(1e12, 0.0, LinkKind.SELF), {(0, 1): fast})
        assert topo.min_remote_bandwidth() == 10.0e9
        assert topo.max_remote_bandwidth() == 100.0e9

    def test_single_device_bandwidths(self):
        topo = Topology.uniform(1, link_bandwidth=10.0e9, self_bandwidth=5.0e11)
        assert topo.min_remote_bandwidth() == 5.0e11

    def test_from_function(self):
        def link_fn(src, dst):
            return Link((src + dst + 1) * 1.0e9, 1.0e-6, LinkKind.INTRA_NODE)

        topo = Topology.from_function(3, link_fn)
        assert topo.bandwidth(0, 1) == 2.0e9
        assert topo.bandwidth(1, 2) == 4.0e9
