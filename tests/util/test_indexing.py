"""Unit tests for the slicing/index-arithmetic primitives."""

import pytest

from repro.util.indexing import (
    Interval,
    Rect,
    block_bounds,
    block_index_range,
    ceil_div,
    intersect_intervals,
    intersect_rects,
    split_extent,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_one(self):
        assert ceil_div(1, 5) == 1

    def test_negative_numerator_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 4)

    def test_zero_divisor_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)


class TestInterval:
    def test_extent(self):
        assert Interval(3, 10).extent == 7

    def test_len(self):
        assert len(Interval(0, 5)) == 5

    def test_empty_is_falsy(self):
        assert not Interval(4, 4)

    def test_non_empty_is_truthy(self):
        assert Interval(4, 5)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_contains_index(self):
        interval = Interval(2, 6)
        assert 2 in interval
        assert 5 in interval
        assert 6 not in interval
        assert 1 not in interval

    def test_iteration(self):
        assert list(Interval(3, 6)) == [3, 4, 5]

    def test_shift(self):
        assert Interval(2, 5).shift(10) == Interval(12, 15)

    def test_shift_negative(self):
        assert Interval(12, 15).shift(-12) == Interval(0, 3)

    def test_intersect_overlapping(self):
        assert Interval(0, 10).intersect(Interval(5, 15)) == Interval(5, 10)

    def test_intersect_disjoint_is_empty(self):
        result = Interval(0, 5).intersect(Interval(10, 20))
        assert result.extent == 0

    def test_intersect_nested(self):
        assert Interval(0, 100).intersect(Interval(40, 60)) == Interval(40, 60)

    def test_intersect_commutative(self):
        a, b = Interval(3, 9), Interval(5, 20)
        assert a.intersect(b) == b.intersect(a)

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(4, 10))
        assert not Interval(0, 5).overlaps(Interval(5, 10))

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 8))
        assert not Interval(0, 10).contains_interval(Interval(2, 12))

    def test_contains_empty_interval(self):
        assert Interval(0, 10).contains_interval(Interval(20, 20))

    def test_localize(self):
        assert Interval(10, 20).localize(10) == Interval(0, 10)

    def test_as_slice(self):
        assert Interval(2, 7).as_slice() == slice(2, 7)

    def test_split_even(self):
        parts = Interval(0, 12).split(3)
        assert parts == (Interval(0, 4), Interval(4, 8), Interval(8, 12))

    def test_split_uneven_front_loaded(self):
        parts = Interval(0, 10).split(3)
        assert [p.extent for p in parts] == [4, 3, 3]
        assert parts[0].start == 0 and parts[-1].stop == 10

    def test_functional_intersect(self):
        assert intersect_intervals(Interval(0, 5), Interval(3, 9)) == Interval(3, 5)


class TestRect:
    def test_from_bounds(self):
        rect = Rect.from_bounds(1, 4, 2, 8)
        assert rect.rows == Interval(1, 4)
        assert rect.cols == Interval(2, 8)

    def test_full(self):
        assert Rect.full((6, 9)) == Rect.from_bounds(0, 6, 0, 9)

    def test_shape_and_size(self):
        rect = Rect.from_bounds(0, 3, 0, 5)
        assert rect.shape == (3, 5)
        assert rect.size == 15

    def test_empty_rect_is_falsy(self):
        assert not Rect.from_bounds(0, 0, 0, 5)

    def test_intersect(self):
        a = Rect.from_bounds(0, 10, 0, 10)
        b = Rect.from_bounds(5, 15, 8, 20)
        assert a.intersect(b) == Rect.from_bounds(5, 10, 8, 10)

    def test_overlaps_requires_both_axes(self):
        a = Rect.from_bounds(0, 5, 0, 5)
        assert not a.overlaps(Rect.from_bounds(0, 5, 5, 10))
        assert a.overlaps(Rect.from_bounds(4, 6, 4, 6))

    def test_contains(self):
        outer = Rect.from_bounds(0, 10, 0, 10)
        assert outer.contains(Rect.from_bounds(2, 8, 3, 7))
        assert not outer.contains(Rect.from_bounds(2, 12, 3, 7))

    def test_shift(self):
        assert Rect.from_bounds(0, 2, 0, 3).shift(5, 7) == Rect.from_bounds(5, 7, 7, 10)

    def test_localize(self):
        tile = Rect.from_bounds(10, 20, 30, 50)
        region = Rect.from_bounds(12, 18, 35, 45)
        local = region.localize(tile)
        assert local == Rect.from_bounds(2, 8, 5, 15)

    def test_as_slices(self):
        assert Rect.from_bounds(1, 4, 2, 6).as_slices() == (slice(1, 4), slice(2, 6))

    def test_transpose(self):
        assert Rect.from_bounds(1, 4, 2, 6).transpose() == Rect.from_bounds(2, 6, 1, 4)

    def test_functional_intersect(self):
        a = Rect.from_bounds(0, 4, 0, 4)
        b = Rect.from_bounds(2, 6, 2, 6)
        assert intersect_rects(a, b) == Rect.from_bounds(2, 4, 2, 4)


class TestSplitExtent:
    def test_even_split(self):
        assert split_extent(12, 4) == (3, 3, 3, 3)

    def test_remainder_goes_to_front(self):
        assert split_extent(10, 4) == (3, 3, 2, 2)

    def test_more_parts_than_extent(self):
        assert split_extent(2, 4) == (1, 1, 0, 0)

    def test_single_part(self):
        assert split_extent(7, 1) == (7,)

    def test_total_preserved(self):
        for extent in (1, 7, 13, 100):
            for parts in (1, 2, 3, 5, 8):
                assert sum(split_extent(extent, parts)) == extent

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            split_extent(10, 0)

    def test_negative_extent(self):
        with pytest.raises(ValueError):
            split_extent(-1, 2)


class TestBlockBounds:
    def test_matches_split_extent(self):
        extent, parts = 11, 4
        sizes = split_extent(extent, parts)
        cursor = 0
        for index, size in enumerate(sizes):
            bounds = block_bounds(extent, parts, index)
            assert bounds == Interval(cursor, cursor + size)
            cursor += size

    def test_covers_whole_extent(self):
        extent, parts = 23, 5
        assert block_bounds(extent, parts, 0).start == 0
        assert block_bounds(extent, parts, parts - 1).stop == extent

    def test_out_of_range_index(self):
        with pytest.raises(ValueError):
            block_bounds(10, 3, 3)

    def test_blocks_are_contiguous(self):
        extent, parts = 17, 6
        for index in range(parts - 1):
            assert block_bounds(extent, parts, index).stop == \
                block_bounds(extent, parts, index + 1).start


class TestBlockIndexRange:
    def test_full_query_covers_all_blocks(self):
        assert block_index_range(20, 4, Interval(0, 20)) == (0, 4)

    def test_single_block_query(self):
        assert block_index_range(20, 4, Interval(0, 5)) == (0, 1)

    def test_query_spanning_boundary(self):
        assert block_index_range(20, 4, Interval(4, 6)) == (0, 2)

    def test_empty_query(self):
        assert block_index_range(20, 4, Interval(5, 5)) == (0, 0)

    def test_query_outside_extent_clipped(self):
        assert block_index_range(20, 4, Interval(25, 30)) == (0, 0)

    def test_uneven_blocks(self):
        # 10 elements in 4 blocks: sizes 3,3,2,2 -> boundaries 0,3,6,8,10.
        assert block_index_range(10, 4, Interval(6, 8)) == (2, 3)
        assert block_index_range(10, 4, Interval(5, 9)) == (1, 4)
