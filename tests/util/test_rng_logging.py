"""Unit tests for the RNG helpers and the logging facade."""

import logging

import numpy as np

from repro.util.logging import enable_console_logging, get_logger
from repro.util.rng import make_rng, random_matrix


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(5)
        b = make_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_none_uses_default_seed(self):
        a = make_rng(None).random(3)
        b = make_rng(None).random(3)
        np.testing.assert_array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen


class TestRandomMatrix:
    def test_shape_and_dtype(self):
        mat = random_matrix((4, 6), dtype=np.float32, seed=0)
        assert mat.shape == (4, 6)
        assert mat.dtype == np.float32

    def test_reproducible(self):
        np.testing.assert_array_equal(random_matrix((3, 3), seed=5),
                                      random_matrix((3, 3), seed=5))

    def test_scale_bounds(self):
        mat = random_matrix((100, 100), seed=1, scale=0.5)
        assert np.all(mat >= -0.5) and np.all(mat < 0.5)

    def test_float64(self):
        assert random_matrix((2, 2), dtype=np.float64).dtype == np.float64


class TestLogging:
    def test_logger_is_namespaced(self):
        assert get_logger("core.direct").name == "repro.core.direct"

    def test_root_logger(self):
        assert get_logger().name == "repro"

    def test_already_namespaced_name_not_doubled(self):
        assert get_logger("repro.dist").name == "repro.dist"

    def test_enable_console_logging_idempotent(self):
        enable_console_logging(logging.WARNING)
        enable_console_logging(logging.WARNING)
        root = logging.getLogger("repro")
        stream_handlers = [h for h in root.handlers if isinstance(h, logging.StreamHandler)
                           and not isinstance(h, logging.NullHandler)]
        assert len(stream_handlers) == 1
