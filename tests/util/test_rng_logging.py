"""Unit tests for the RNG helpers and the logging facade."""

import logging

import numpy as np

from repro.util.logging import (
    enable_console_logging,
    format_kv,
    get_logger,
    log_event,
)
from repro.util.rng import make_rng, random_matrix


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(5)
        b = make_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_none_uses_default_seed(self):
        a = make_rng(None).random(3)
        b = make_rng(None).random(3)
        np.testing.assert_array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen


class TestRandomMatrix:
    def test_shape_and_dtype(self):
        mat = random_matrix((4, 6), dtype=np.float32, seed=0)
        assert mat.shape == (4, 6)
        assert mat.dtype == np.float32

    def test_reproducible(self):
        np.testing.assert_array_equal(random_matrix((3, 3), seed=5),
                                      random_matrix((3, 3), seed=5))

    def test_scale_bounds(self):
        mat = random_matrix((100, 100), seed=1, scale=0.5)
        assert np.all(mat >= -0.5) and np.all(mat < 0.5)

    def test_float64(self):
        assert random_matrix((2, 2), dtype=np.float64).dtype == np.float64


class TestLogging:
    def test_logger_is_namespaced(self):
        assert get_logger("core.direct").name == "repro.core.direct"

    def test_root_logger(self):
        assert get_logger().name == "repro"

    def test_already_namespaced_name_not_doubled(self):
        assert get_logger("repro.dist").name == "repro.dist"

    def test_enable_console_logging_idempotent(self):
        enable_console_logging(logging.WARNING)
        enable_console_logging(logging.WARNING)
        root = logging.getLogger("repro")
        stream_handlers = [h for h in root.handlers if isinstance(h, logging.StreamHandler)
                           and not isinstance(h, logging.NullHandler)]
        assert len(stream_handlers) == 1


class TestStructuredEvents:
    def test_format_kv_sorts_and_quotes(self):
        text = format_kv(b=2, a="x", c="two words", d=0.123456789)
        assert text == "a=x b=2 c='two words' d=0.123457"

    def test_log_event_renders_event_plus_fields(self, caplog):
        logger = get_logger("test.structured")
        with caplog.at_level(logging.INFO, logger="repro.test.structured"):
            log_event(logger, "serve.worker.start", worker=1, pid=42)
        (record,) = caplog.records
        assert record.message == "serve.worker.start pid=42 worker=1"

    def test_log_event_carries_the_active_trace_id(self, caplog):
        from repro.obs.tracing import Tracer

        logger = get_logger("test.structured")
        tracer = Tracer(role="test")
        with caplog.at_level(logging.INFO, logger="repro.test.structured"):
            with tracer.span("request"):
                log_event(logger, "planner.event", outcome="hit")
        (span,) = tracer.spans()
        (record,) = caplog.records
        assert f"trace={span.trace_id}" in record.message

    def test_log_event_skips_formatting_when_disabled(self, caplog):
        logger = get_logger("test.silenced")

        class Unrenderable:
            def __str__(self):
                raise AssertionError("formatted a record on a silenced logger")

        with caplog.at_level(logging.ERROR, logger="repro.test.silenced"):
            log_event(logger, "noisy.event", payload=Unrenderable())
        assert caplog.records == []
