"""Unit tests for argument validation and the exception hierarchy."""

import numpy as np
import pytest

from repro.util.validation import (
    CommunicationError,
    PartitionError,
    ReplicationError,
    ReproError,
    SchedulingError,
    ShapeError,
    check_divides,
    check_in_range,
    check_matmul_shapes,
    check_matrix,
    check_non_negative_int,
    check_positive_int,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc", [ShapeError, PartitionError, ReplicationError,
                                     CommunicationError, SchedulingError])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-2, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "x")


class TestCheckInRange:
    def test_in_range(self):
        assert check_in_range(3, 0, 5, "x") == 3

    def test_low_bound_inclusive(self):
        assert check_in_range(0, 0, 5, "x") == 0

    def test_high_bound_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range(5, 0, 5, "x")


class TestCheckDivides:
    def test_divides(self):
        check_divides(3, 12, "must divide")

    def test_does_not_divide(self):
        with pytest.raises(ReplicationError):
            check_divides(5, 12, "must divide")

    def test_zero_divisor(self):
        with pytest.raises(ReplicationError):
            check_divides(0, 12, "must divide")


class TestCheckMatrix:
    def test_accepts_2d_array(self):
        arr = check_matrix(np.ones((3, 4)), "A")
        assert arr.shape == (3, 4)

    def test_accepts_nested_list(self):
        arr = check_matrix([[1, 2], [3, 4]], "A")
        assert arr.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            check_matrix(np.ones(5), "A")

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            check_matrix(np.empty((0, 3)), "A")

    def test_rejects_non_numeric(self):
        with pytest.raises(ShapeError):
            check_matrix(np.array([["a", "b"], ["c", "d"]]), "A")


class TestCheckMatmulShapes:
    def test_compatible(self):
        assert check_matmul_shapes((3, 4), (4, 5)) == (3, 5, 4)

    def test_with_output(self):
        assert check_matmul_shapes((3, 4), (4, 5), (3, 5)) == (3, 5, 4)

    def test_inner_mismatch(self):
        with pytest.raises(ShapeError):
            check_matmul_shapes((3, 4), (5, 6))

    def test_output_mismatch(self):
        with pytest.raises(ShapeError):
            check_matmul_shapes((3, 4), (4, 5), (3, 6))
